"""The disk-backed :class:`repro.store.ArtifactStore`.

Covers the three artifact families (prepared data, experiment results,
sweep manifests), the content-key semantics (evaluation parameters shared,
scheduling knobs ignored), and the golden-vs-store guarantee: a stored and
reloaded result is field-identical to the freshly computed one.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import (
    ExperimentConfig,
    PreparedDataCache,
    prepare_data,
    prepared_data_key,
)
from repro.serialization import SchemaError
from repro.store import ArtifactStore
from repro.utils.timeutils import DAY
from repro.serialization import canonical_json, tag


SCENARIO = ScenarioConfig.small(seed=11).with_duration(45 * DAY)

#: Cheapest config that exercises every approach group.
TINY = ExperimentConfig(
    rl_episodes=5,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(8, 8),
    rf_n_estimators=3,
    rf_max_depth=3,
    threshold_grid_size=3,
    charge_training_time=False,
    executor_kind="serial",
)


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "runs")


class TestMarker:
    def test_store_creates_and_reopens_marker(self, tmp_path):
        root = tmp_path / "runs"
        ArtifactStore(root)
        assert (root / "store.json").exists()
        ArtifactStore(root)  # idempotent reopen

    def test_foreign_marker_rejected(self, tmp_path):
        root = tmp_path / "runs"
        root.mkdir()
        (root / "store.json").write_text(canonical_json(tag("not_a_store", {})))
        with pytest.raises(SchemaError):
            ArtifactStore(root)


class TestPreparedData:
    def test_roundtrip_rebuilds_identical_product(self, store):
        prepared = prepare_data(SCENARIO, TINY)
        store.save_prepared(prepared, TINY)
        loaded = store.load_prepared(SCENARIO, TINY)
        assert loaded is not None
        assert loaded.scenario == SCENARIO
        assert loaded.reduction_report == prepared.reduction_report
        assert loaded.data_key == prepared_data_key(SCENARIO, TINY)
        assert sorted(loaded.tracks) == sorted(prepared.tracks)
        for node, track in prepared.tracks.items():
            other = loaded.tracks[node]
            assert np.array_equal(track.times, other.times)
            assert np.array_equal(track.features, other.features)
            assert np.array_equal(track.is_ue, other.is_ue)
        assert loaded.sampler.job_log == prepared.sampler.job_log

    def test_miss_returns_none(self, store):
        assert store.load_prepared(SCENARIO, TINY) is None
        assert not store.has_prepared(SCENARIO, TINY)

    def test_evaluation_parameters_share_one_entry(self, store):
        """Same key semantics as the in-memory cache: cost/restartable excluded."""
        prepared = prepare_data(SCENARIO, TINY)
        store.save_prepared(prepared, TINY)
        cheaper = SCENARIO.with_mitigation_cost(10.0).with_restartable(False)
        assert store.prepared_key(cheaper, TINY) == store.prepared_key(SCENARIO, TINY)
        loaded = store.load_prepared(cheaper, TINY)
        assert loaded is not None
        # Re-bound to the requesting scenario, not the saved one.
        assert loaded.scenario == cheaper
        assert loaded.data_key == prepared_data_key(cheaper, TINY)

    def test_data_axes_get_distinct_entries(self, store):
        base_key = store.prepared_key(SCENARIO, TINY)
        assert store.prepared_key(SCENARIO.with_seed(99), TINY) != base_key
        assert store.prepared_key(SCENARIO.with_manufacturer(1), TINY) != base_key
        assert store.prepared_key(SCENARIO.with_job_scale(2.0), TINY) != base_key

    def test_spill_backend_loads_without_prepare_calls(self, store):
        writer = PreparedDataCache(spill=store)
        writer.get(SCENARIO, TINY)
        assert writer.prepare_calls == 1
        assert writer.spill_saves == 1

        reader = PreparedDataCache(spill=store)  # fresh session
        prepared = reader.get(SCENARIO, TINY)
        assert reader.prepare_calls == 0
        assert reader.spill_hits == 1
        assert prepared.scenario == SCENARIO
        # Second get is a pure memory hit.
        reader.get(SCENARIO, TINY)
        assert reader.hits == 1
        assert reader.spill_hits == 1

    def test_external_logs_never_spill(self, store, raw_error_log):
        cache = PreparedDataCache(spill=store)
        cache.get(SCENARIO, TINY, error_log=raw_error_log)
        assert cache.spill_saves == 0
        assert store.list_prepared() == []


class TestExperimentResults:
    @pytest.fixture(scope="class")
    def fresh_result(self):
        return run_experiment(SCENARIO, TINY)

    def test_stored_and_reloaded_result_is_field_identical(self, store, fresh_result):
        """The golden-vs-store guarantee of the serialization schema."""
        store.save_result(SCENARIO, TINY, fresh_result)
        reloaded = store.load_result(SCENARIO, TINY)
        assert reloaded is not None
        assert reloaded.scenario_name == fresh_result.scenario_name
        assert (
            reloaded.mitigation_cost_node_hours
            == fresh_result.mitigation_cost_node_hours
        )
        assert reloaded.splits == fresh_result.splits
        assert reloaded.reduction_report == fresh_result.reduction_report
        assert reloaded.n_test_events == fresh_result.n_test_events
        assert reloaded.wallclock_seconds == fresh_result.wallclock_seconds
        assert reloaded.approach_names == fresh_result.approach_names
        for name in fresh_result.approach_names:
            assert (
                reloaded.approaches[name].per_split
                == fresh_result.approaches[name].per_split
            ), name
        # And therefore every derived quantity agrees exactly.
        assert reloaded.total_costs() == fresh_result.total_costs()
        assert reloaded.confusions() == fresh_result.confusions()
        assert reloaded.to_json() == fresh_result.to_json()

    def test_schedule_knobs_share_a_result_slot(self, store):
        parallel = TINY.with_overrides(n_workers=4, executor_kind="process")
        assert store.result_key(SCENARIO, parallel) == store.result_key(SCENARIO, TINY)

    def test_result_knobs_get_distinct_slots(self, store):
        assert store.result_key(
            SCENARIO, TINY.with_overrides(rl_episodes=6)
        ) != store.result_key(SCENARIO, TINY)
        assert store.result_key(
            SCENARIO.with_mitigation_cost(10.0), TINY
        ) != store.result_key(SCENARIO, TINY)

    def test_miss_returns_none(self, store):
        assert store.load_result(SCENARIO, TINY) is None


class TestInventory:
    def test_listings_cover_all_families(self, store):
        from repro.evaluation.sweep import SweepSpec, run_sweep

        spec = SweepSpec(base=SCENARIO, mitigation_costs=(2.0, 10.0))
        run_sweep(spec, TINY, cache=PreparedDataCache(spill=store), store=store)

        sweeps = store.list_sweeps()
        assert len(sweeps) == 1
        assert sweeps[0]["base_scenario"] == SCENARIO.name
        assert sorted(sweeps[0]["labels"]) == ["cost=10", "cost=2"]

        results = store.list_results()
        assert len(results) == 2
        assert {entry["scenario"] for entry in results} == {SCENARIO.name}

        assert len(store.list_prepared()) == 1

        rebuilt = store.load_sweep_by_key(sweeps[0]["key"])
        assert rebuilt is not None
        assert sorted(rebuilt.labels) == ["cost=10", "cost=2"]

    def test_manifest_with_missing_result_is_reported(self, store):
        from repro.evaluation.sweep import SweepSpec, run_sweep

        spec = SweepSpec(base=SCENARIO, mitigation_costs=(2.0,))
        run_sweep(spec, TINY, cache=PreparedDataCache(), store=store)
        key = store.list_sweeps()[0]["key"]
        result_key = store.list_results()[0]["key"]
        (store.root / "results" / f"{result_key}.json").unlink()
        with pytest.raises(SchemaError, match="missing result"):
            store.load_sweep_by_key(key)

    def test_load_sweep_miss_returns_none(self, store):
        assert store.load_sweep_by_key("0" * 16) is None


class TestAtomicity:
    def test_half_written_result_never_visible(self, store, tmp_path):
        """Readers only ever see complete JSON files (atomic replace)."""
        fresh = run_experiment(SCENARIO, TINY)
        store.save_result(SCENARIO, TINY, fresh)
        path = store.root / "results" / f"{store.result_key(SCENARIO, TINY)}.json"
        json.loads(path.read_text())  # parses completely
        leftovers = list((store.root / "results").glob("*.tmp"))
        assert leftovers == []


class TestGarbageCollection:
    @pytest.fixture()
    def populated(self, store):
        """A store with one result-referenced and one orphaned product."""
        prepared = prepare_data(SCENARIO, TINY)
        store.save_prepared(prepared, TINY)
        store.save_result(SCENARIO, TINY, run_experiment(SCENARIO, TINY))
        orphan_scenario = ScenarioConfig.small(seed=4242).with_duration(20 * DAY)
        orphan_key = store.save_prepared(
            prepare_data(orphan_scenario, TINY), TINY
        )
        return store, store.prepared_key(SCENARIO, TINY), orphan_key

    def test_referenced_keys_cover_results_and_sweeps(self, populated):
        store, referenced_key, orphan_key = populated
        referenced = store.referenced_prepared_keys()
        assert referenced_key in referenced
        assert orphan_key not in referenced

    def test_dry_run_reports_without_deleting(self, populated):
        store, referenced_key, orphan_key = populated
        report = store.gc(dry_run=True, grace_seconds=0.0)
        assert report.dry_run
        assert report.removed == (orphan_key,)
        assert referenced_key in report.kept
        assert report.freed_bytes > 0
        assert orphan_key in store.list_prepared()  # nothing deleted

    def test_gc_prunes_orphans_and_keeps_referenced(self, populated):
        store, referenced_key, orphan_key = populated
        dry = store.gc(dry_run=True, grace_seconds=0.0)
        report = store.gc(grace_seconds=0.0)
        assert report.removed == (orphan_key,)
        assert report.freed_bytes == dry.freed_bytes
        assert store.list_prepared() == [referenced_key]
        # The referenced product still loads after the pass.
        assert store.load_prepared(SCENARIO, TINY) is not None
        # A second pass is a no-op.
        assert store.gc(grace_seconds=0.0).removed == ()

    def test_gc_prunes_incomplete_entries(self, store):
        incomplete = store.root / "prepared" / "deadbeefdeadbeef"
        incomplete.mkdir(parents=True)
        (incomplete / "arrays.npz").write_bytes(b"partial")
        report = store.gc(grace_seconds=0.0)
        assert "deadbeefdeadbeef" in report.removed
        assert not incomplete.exists()

    def test_grace_window_protects_in_flight_products(self, populated):
        """A freshly written (possibly still-spilling) product survives."""
        store, referenced_key, orphan_key = populated
        report = store.gc(grace_seconds=3600.0)
        assert report.removed == ()
        assert orphan_key in report.kept
        assert orphan_key in store.list_prepared()
