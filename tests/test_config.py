"""Round-trip tests for the ScenarioConfig presets and ``with_*`` modifiers.

Every modifier must change exactly the intended field and preserve
frozen-dataclass equality everywhere else — the sweep engine derives its
points through these modifiers, so a modifier that silently touched another
field would corrupt whole sweep axes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import EvaluationConfig, ScenarioConfig
from repro.utils.timeutils import DAY


@pytest.fixture()
def base():
    return ScenarioConfig.small(seed=7)


class TestPresets:
    def test_presets_have_neutral_axes(self):
        for preset in (
            ScenarioConfig.small(),
            ScenarioConfig.benchmark(),
            ScenarioConfig.paper(),
        ):
            assert preset.manufacturer is None
            assert preset.job_scaling_factor == 1.0

    def test_evaluation_cost_conversion(self):
        assert EvaluationConfig(
            mitigation_cost_node_minutes=30.0
        ).mitigation_cost_node_hours == pytest.approx(0.5)


class TestModifierRoundTrips:
    """Each modifier: intended field changes, everything else is equal."""

    def test_with_mitigation_cost(self, base):
        modified = base.with_mitigation_cost(10.0)
        assert modified.evaluation.mitigation_cost_node_minutes == 10.0
        restored = replace(
            modified,
            evaluation=replace(
                modified.evaluation,
                mitigation_cost_node_minutes=base.evaluation.mitigation_cost_node_minutes,
            ),
        )
        assert restored == base

    def test_with_restartable(self, base):
        modified = base.with_restartable(False)
        assert modified.evaluation.restartable is False
        restored = replace(
            modified,
            evaluation=replace(
                modified.evaluation, restartable=base.evaluation.restartable
            ),
        )
        assert restored == base

    def test_with_seed(self, base):
        modified = base.with_seed(123)
        assert modified.seed == 123
        assert replace(modified, seed=base.seed) == base

    def test_with_duration(self, base):
        modified = base.with_duration(42 * DAY)
        assert modified.duration_seconds == 42 * DAY
        assert replace(modified, duration_seconds=base.duration_seconds) == base

    def test_with_manufacturer(self, base):
        modified = base.with_manufacturer(1)
        assert modified.manufacturer == 1
        assert replace(modified, manufacturer=base.manufacturer) == base
        # None lifts the restriction again.
        assert modified.with_manufacturer(None).manufacturer is None

    def test_with_job_scale(self, base):
        modified = base.with_job_scale(3.0)
        assert modified.job_scaling_factor == 3.0
        assert replace(modified, job_scaling_factor=base.job_scaling_factor) == base

    def test_modifiers_compose_and_commute(self, base):
        a = base.with_mitigation_cost(5.0).with_manufacturer(2).with_job_scale(0.3)
        b = base.with_job_scale(0.3).with_manufacturer(2).with_mitigation_cost(5.0)
        assert a == b
        assert a != base

    def test_modifiers_do_not_mutate_the_original(self, base):
        snapshot = replace(base)
        base.with_mitigation_cost(9.0)
        base.with_restartable(False)
        base.with_seed(1)
        base.with_duration(1 * DAY)
        base.with_manufacturer(0)
        base.with_job_scale(10.0)
        assert base == snapshot
