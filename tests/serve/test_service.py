"""Online/offline equivalence and behavior of the decision service.

The central claim of ``repro.serve`` is exactness: a service fed the same
events, job timelines and policy as an offline replay produces *bit-identical*
decisions and cost totals — for the forest baselines and the RL policy alike,
with and without restartable jobs, under any micro-batch configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
    PeriodicMitigatePolicy,
)
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.policies import MitigationPolicy, RLPolicy
from repro.evaluation.runner import (
    build_traces,
    evaluate_policy,
    replay_decision_masks,
)
from repro.serve import (
    ConstantJobProvider,
    DecisionService,
    ReplaySource,
    SampledJobProvider,
    ServeConfig,
    TimelineJobProvider,
    serve_log,
)
from repro.utils.timeutils import DAY

MITIGATION_COST = 2 / 60.0


@pytest.fixture(scope="module")
def traces(feature_tracks, job_sampler):
    """Full-range traces of the small log (serving covers the whole stream)."""
    t_max = max(
        float(track.times[-1]) for track in feature_tracks.values() if len(track)
    )
    return build_traces(feature_tracks, job_sampler, 0.0, t_max + 1.0, seed=97)


@pytest.fixture(scope="module")
def jobs(traces):
    return TimelineJobProvider({trace.node: trace.timeline for trace in traces})


@pytest.fixture(scope="module")
def sc20_policy(feature_tracks):
    dataset = build_prediction_dataset(
        feature_tracks, prediction_window_seconds=DAY, t_start=0.0, t_end=50 * DAY
    )
    forest, _ = train_sc20_forest(dataset, n_estimators=8, max_depth=6, seed=5)
    return SC20RandomForestPolicy(forest, threshold=0.4)


def _rl_policy(normalizer, seed, mitigate_bias=0.0):
    agent = DDDQNAgent(
        normalizer.state_dim, DQNConfig(hidden_sizes=(24, 12), seed=seed)
    )
    agent.online.advantage_b[:] = [-mitigate_bias, 0.0]
    agent.target.copy_from(agent.online)
    return RLPolicy(agent, normalizer)


def _assert_serve_matches_offline(
    log, traces, jobs, policy, restartable, config=None
):
    """Serve the log and pin decisions + cost totals against the replay."""
    config = config or ServeConfig(
        mitigation_cost_node_hours=MITIGATION_COST, restartable=restartable
    )
    report = serve_log(log, policy, jobs, config)

    masks = replay_decision_masks(traces, policy, restartable=restartable)
    assert set(report.masks) == {trace.node for trace in traces}
    for trace, mask in zip(traces, masks):
        assert np.array_equal(report.masks[trace.node], mask), (
            policy.name,
            trace.node,
        )

    evaluation = evaluate_policy(
        traces,
        policy,
        MITIGATION_COST,
        restartable=restartable,
        include_training_cost=False,
    )
    assert report.ue_cost_node_hours == evaluation.costs.ue_cost
    assert report.mitigation_cost_node_hours == evaluation.costs.mitigation_cost
    assert report.n_mitigations == evaluation.costs.n_mitigations
    assert report.n_ues == evaluation.costs.n_ues
    assert report.n_decision_points == evaluation.n_decision_points
    assert report.n_steps == sum(len(trace) for trace in traces)
    return report


class TestOfflineEquivalence:
    """Serve == evaluate_policy, bit for bit (the ISSUE acceptance bar)."""

    @pytest.mark.parametrize("restartable", [True, False])
    def test_forest_policy(self, reduced_error_log, traces, jobs, sc20_policy, restartable):
        report = _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, sc20_policy, restartable
        )
        assert report.mean_batch_size > 1.0

    @pytest.mark.parametrize("restartable", [True, False])
    def test_rl_policy(self, reduced_error_log, traces, jobs, normalizer, restartable):
        policy = _rl_policy(normalizer, seed=17)
        report = _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, policy, restartable
        )
        assert report.n_mitigations > 0 or report.n_decision_points > 0

    def test_rl_policy_dense_mitigation(self, reduced_error_log, traces, jobs, normalizer):
        """A mitigate-biased head exercises the cost-reset feedback densely."""
        policy = _rl_policy(normalizer, seed=20, mitigate_bias=3.0)
        report = _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, policy, True
        )
        assert report.n_mitigations > 0

    @pytest.mark.parametrize("restartable", [True, False])
    def test_myopic_cost_feedback(
        self, reduced_error_log, traces, jobs, sc20_policy, restartable
    ):
        policy = MyopicRFPolicy(sc20_policy, MITIGATION_COST)
        _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, policy, restartable
        )

    def test_static_policies(self, reduced_error_log, traces, jobs):
        always = _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, AlwaysMitigatePolicy(), True
        )
        assert always.n_mitigations == always.n_decision_points
        never = _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, NeverMitigatePolicy(), True
        )
        assert never.n_mitigations == 0

    def test_decide_only_policy_uses_the_scalar_fallback(
        self, reduced_error_log, traces, jobs
    ):
        """The base-class decide_nodes loop serves decide()-only policies."""

        class _ThresholdOnCost(MitigationPolicy):
            name = "Cost-threshold"
            cost_dependent = True

            def decide(self, context) -> bool:
                return context.ue_cost > 5.0

        _assert_serve_matches_offline(
            reduced_error_log, traces, jobs, _ThresholdOnCost(), True
        )


class TestBatchingInvariance:
    """max_batch / max_delay shape latency, never decisions."""

    def test_decisions_invariant_under_batch_knobs(
        self, reduced_error_log, jobs, sc20_policy
    ):
        reports = [
            serve_log(
                reduced_error_log,
                sc20_policy,
                jobs,
                ServeConfig(
                    mitigation_cost_node_hours=MITIGATION_COST,
                    max_batch=max_batch,
                    max_delay_seconds=max_delay,
                ),
            )
            for max_batch, max_delay in [(1, 0.0), (8, 0.01), (1024, 0.5)]
        ]
        reference = reports[0]
        for report in reports[1:]:
            assert set(report.masks) == set(reference.masks)
            for node in reference.masks:
                assert np.array_equal(report.masks[node], reference.masks[node])
            assert report.ue_cost_node_hours == reference.ue_cost_node_hours
            assert report.n_mitigations == reference.n_mitigations
        # max_batch=1 degenerates to scalar serving; the wide config batches.
        assert reference.mean_batch_size == 1.0
        assert reports[2].mean_batch_size > 1.0

    def test_throttled_replay_matches_unthrottled(self, reduced_error_log, jobs):
        """Real-time pacing (the storm mode) changes timing, not decisions."""
        span = reduced_error_log.time[-1] - reduced_error_log.time[0]
        throttled = serve_log(
            reduced_error_log,
            AlwaysMitigatePolicy(),
            jobs,
            ServeConfig(mitigation_cost_node_hours=MITIGATION_COST),
            speed=float(span) / 0.2,  # whole log in ~200 ms of wall time
        )
        unthrottled = serve_log(
            reduced_error_log,
            AlwaysMitigatePolicy(),
            jobs,
            ServeConfig(mitigation_cost_node_hours=MITIGATION_COST),
        )
        assert throttled.n_steps == unthrottled.n_steps
        for node in unthrottled.masks:
            assert np.array_equal(throttled.masks[node], unthrottled.masks[node])
        assert throttled.ue_cost_node_hours == unthrottled.ue_cost_node_hours


class TestJobProviders:
    def test_sampled_provider_reconstructs_build_traces_timelines(
        self, traces, job_sampler
    ):
        """Same sampler + seed + range => the offline timelines, node by node."""
        t_max = max(float(trace.times[-1]) for trace in traces)
        provider = SampledJobProvider(job_sampler, 0.0, t_max + 1.0, seed=97)
        for trace in traces:
            timeline = provider.timeline_for(trace.node)
            assert np.array_equal(timeline.starts, trace.timeline.starts)
            assert np.array_equal(timeline.durations, trace.timeline.durations)
            assert np.array_equal(timeline.n_nodes, trace.timeline.n_nodes)
            # Cached: the provider must answer a stable timeline.
            assert provider.timeline_for(trace.node) is timeline

    def test_timeline_provider_unknown_node(self, jobs):
        with pytest.raises(KeyError, match="no job timeline"):
            jobs.timeline_for(10**9)

    def test_timeline_provider_fallback(self):
        provider = TimelineJobProvider({}, fallback=ConstantJobProvider(n_nodes=4.0))
        timeline = provider.timeline_for(3)
        assert timeline.potential_ue_cost(3600.0, None, True) == 4.0

    def test_constant_provider_cost_grows_from_job_start(self):
        provider = ConstantJobProvider(n_nodes=2.0, job_start=0.0)
        timeline = provider.timeline_for(0)
        assert timeline.potential_ue_cost(7200.0, None, False) == 4.0
        assert timeline.potential_ue_cost(7200.0, 3600.0, True) == 2.0


class TestServiceBehavior:
    def test_unservable_policies_are_rejected(self, reduced_error_log, jobs):
        for policy in (OraclePolicy(), PeriodicMitigatePolicy(12.0)):
            with pytest.raises(NotImplementedError):
                serve_log(reduced_error_log, policy, jobs)

    def test_out_of_order_stream_is_rejected(self, jobs):
        from repro.telemetry.records import EventKind, EventRecord

        records = [
            EventRecord(time=100.0, node=0, dimm=1, ce_count=1),
            EventRecord(time=50.0, node=1, dimm=2, ce_count=1),
        ]
        with pytest.raises(ValueError, match="time-ordered"):
            serve_log(records, AlwaysMitigatePolicy(), ConstantJobProvider())

    def test_decision_log_covers_every_step(self, reduced_error_log, jobs, sc20_policy):
        report = serve_log(
            reduced_error_log,
            sc20_policy,
            jobs,
            ServeConfig(mitigation_cost_node_hours=MITIGATION_COST),
        )
        assert len(report.decisions) == report.n_steps
        n_ue = sum(1 for record in report.decisions if record.is_ue)
        n_mitigate = sum(1 for record in report.decisions if record.mitigate)
        assert n_ue == report.n_ues
        assert n_mitigate == report.n_mitigations
        payload = report.decisions[0].to_dict()
        assert set(payload) == {"tick", "node", "time", "ue_cost", "mitigate", "is_ue"}
        # Per node, the log is in step-time order (the per-node decision log).
        by_node = {}
        for record in report.decisions:
            by_node.setdefault(record.node, []).append(record.time)
        for times in by_node.values():
            assert times == sorted(times)

    def test_keep_decisions_off_drops_the_log_only(
        self, reduced_error_log, jobs, sc20_policy
    ):
        slim = serve_log(
            reduced_error_log,
            sc20_policy,
            jobs,
            ServeConfig(
                mitigation_cost_node_hours=MITIGATION_COST, keep_decisions=False
            ),
        )
        full = serve_log(
            reduced_error_log,
            sc20_policy,
            jobs,
            ServeConfig(mitigation_cost_node_hours=MITIGATION_COST),
        )
        assert slim.decisions == []
        assert slim.n_mitigations == full.n_mitigations
        assert slim.ue_cost_node_hours == full.ue_cost_node_hours

    def test_report_telemetry(self, reduced_error_log, jobs):
        report = serve_log(reduced_error_log, AlwaysMitigatePolicy(), jobs)
        assert report.n_ticks == len(report.batch_sizes)
        assert report.n_ticks == len(report.tick_latencies)
        assert int(report.batch_sizes.sum()) == report.n_decision_points
        histogram = report.batch_size_histogram()
        assert sum(histogram.values()) == report.n_ticks
        assert report.latency_seconds(99) >= report.latency_seconds(50) >= 0.0
        assert report.decisions_per_second > 0
        assert "decisions/s" in report.summary()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(max_delay_seconds=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(mitigation_cost_node_hours=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(queue_size=0)

    def test_source_errors_propagate(self, jobs):
        class _FailingSource:
            async def __aiter__(self):
                from repro.telemetry.records import EventRecord

                yield EventRecord(time=1.0, node=0, dimm=0, ce_count=1)
                raise RuntimeError("stream went away")

        import asyncio

        service = DecisionService(
            AlwaysMitigatePolicy(), ConstantJobProvider(), ServeConfig()
        )
        with pytest.raises(RuntimeError, match="stream went away"):
            asyncio.run(service.run(_FailingSource()))
