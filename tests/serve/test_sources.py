"""Event sources: file tailing, replay pacing, parser error surfacing."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.baselines.static import AlwaysMitigatePolicy
from repro.serve import (
    ConstantJobProvider,
    DecisionService,
    ReplaySource,
    ServeConfig,
    TailSource,
)
from repro.telemetry import format_full_log
from repro.telemetry.records import EventKind, EventRecord


def _sample_records():
    return [
        EventRecord(time=10.0, node=3, dimm=1, ce_count=4, rank=0, bank=2),
        EventRecord(time=15.5, node=7, kind=EventKind.BOOT),
        EventRecord(time=200.25, node=3, dimm=1, ce_count=1),
        EventRecord(time=300.0, node=3, kind=EventKind.UE, dimm=1),
        EventRecord(time=410.0, node=7, dimm=2, ce_count=2),
    ]


def _serve(source):
    service = DecisionService(
        AlwaysMitigatePolicy(),
        ConstantJobProvider(),
        ServeConfig(mitigation_cost_node_hours=0.5),
    )
    return asyncio.run(service.run(source))


class TestTailSource:
    def test_file_matches_in_memory_replay(self, tmp_path):
        from repro.telemetry.error_log import ErrorLog

        records = _sample_records()
        log = ErrorLog.from_records(records)
        path = tmp_path / "events.log"
        path.write_text("# spooled by mcelog\n\n" + format_full_log(log) + "\n")

        from_file = _serve(TailSource(path))
        from_memory = _serve(ReplaySource(log))
        assert from_file.n_events == len(records)
        assert from_file.n_steps == from_memory.n_steps
        assert set(from_file.masks) == set(from_memory.masks)
        for node in from_memory.masks:
            assert np.array_equal(from_file.masks[node], from_memory.masks[node])
        assert from_file.ue_cost_node_hours == from_memory.ue_cost_node_hours

    def test_parse_errors_carry_the_file_line_number(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text(
            "# header comment\n"
            "CE time=1.0 node=0 dimm=0 count=1\n"
            "WAT time=2.0 node=0\n"
        )
        with pytest.raises(ValueError, match="^line 3: "):
            _serve(TailSource(path))

    def test_missing_trailing_newline_is_parsed(self, tmp_path):
        path = tmp_path / "torn.log"
        path.write_text("CE time=5.0 node=1 dimm=0 count=2")  # no newline
        report = _serve(TailSource(path))
        assert report.n_events == 1
        assert report.n_steps == 1

    def test_follow_mode_picks_up_appended_lines(self, tmp_path):
        path = tmp_path / "live.log"
        path.write_text("")

        async def scenario():
            source = TailSource(path, follow=True, poll_seconds=0.01)
            iterator = source.__aiter__()

            async def writer():
                await asyncio.sleep(0.03)
                with open(path, "a") as handle:
                    handle.write("CE time=1.0 node=0 dimm=0 count=1\n")
                await asyncio.sleep(0.03)
                with open(path, "a") as handle:
                    handle.write("UE time=70.0 node=0\n")

            task = asyncio.create_task(writer())
            first = await asyncio.wait_for(iterator.__anext__(), timeout=5.0)
            second = await asyncio.wait_for(iterator.__anext__(), timeout=5.0)
            await task
            await iterator.aclose()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.kind == EventKind.CE and first.time == 1.0
        assert second.kind == EventKind.UE and second.time == 70.0


class TestReplaySource:
    def test_replays_record_sequences(self):
        report = _serve(ReplaySource(_sample_records()))
        assert report.n_events == 5
        assert report.n_ues == 1

    def test_speed_paces_wall_time(self):
        records = [
            EventRecord(time=0.0, node=0, dimm=0, ce_count=1),
            EventRecord(time=100.0, node=0, dimm=0, ce_count=1),
        ]

        async def timed():
            loop = asyncio.get_running_loop()
            started = loop.time()
            collected = [r async for r in ReplaySource(records, speed=1000.0)]
            return collected, loop.time() - started

        collected, elapsed = asyncio.run(timed())
        assert len(collected) == 2
        # 100 s of event time at 1000x => >= 0.1 s of wall time.
        assert elapsed >= 0.09

    def test_speed_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplaySource([], speed=0.0)
