"""Tests for random under-sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.sampling import random_undersample


class TestRandomUndersample:
    def test_balances_classes(self):
        X = np.arange(100).reshape(-1, 1).astype(float)
        y = np.zeros(100)
        y[:5] = 1
        X_bal, y_bal = random_undersample(X, y, majority_ratio=1.0, seed=0)
        assert y_bal.sum() == 5
        assert (y_bal == 0).sum() == 5

    def test_majority_ratio(self):
        X = np.arange(100).reshape(-1, 1).astype(float)
        y = np.zeros(100)
        y[:10] = 1
        X_bal, y_bal = random_undersample(X, y, majority_ratio=3.0, seed=0)
        assert (y_bal == 0).sum() == 30

    def test_all_positives_kept(self):
        X = np.arange(50).reshape(-1, 1).astype(float)
        y = np.zeros(50)
        y[::10] = 1
        X_bal, y_bal = random_undersample(X, y, seed=1)
        assert y_bal.sum() == y.sum()

    def test_no_positives_returns_unchanged(self):
        X = np.zeros((20, 2))
        y = np.zeros(20)
        X_out, y_out = random_undersample(X, y)
        assert X_out.shape == X.shape

    def test_no_negatives_returns_unchanged(self):
        X = np.zeros((20, 2))
        y = np.ones(20)
        X_out, y_out = random_undersample(X, y)
        assert len(y_out) == 20

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            random_undersample(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            random_undersample(np.zeros((3, 2)), np.zeros(3), majority_ratio=0)

    def test_ratio_capped_by_available_negatives(self):
        X = np.arange(12).reshape(-1, 1).astype(float)
        y = np.zeros(12)
        y[:6] = 1
        X_bal, y_bal = random_undersample(X, y, majority_ratio=100.0, seed=0)
        assert (y_bal == 0).sum() == 6

    @given(st.integers(min_value=2, max_value=100), st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_property_rows_stay_aligned(self, n_neg, n_pos):
        X = np.arange(n_neg + n_pos, dtype=float).reshape(-1, 1)
        y = np.concatenate([np.zeros(n_neg), np.ones(n_pos)])
        X_bal, y_bal = random_undersample(X, y, seed=3)
        # Every positive row value must still map to a positive label.
        for value, label in zip(X_bal[:, 0], y_bal):
            assert label == y[int(value)]
