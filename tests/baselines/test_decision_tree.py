"""Tests for the from-scratch CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.decision_tree import DecisionTreeClassifier


def _separable_dataset(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(float)
    return X, y


class TestFit:
    def test_learns_separable_data(self):
        X, y = _separable_dataset()
        tree = DecisionTreeClassifier(max_depth=6, seed=0).fit(X, y)
        accuracy = np.mean(tree.predict(X) == y)
        assert accuracy > 0.93

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, 1.0, 1.0])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.n_nodes == 1
        assert np.all(tree.predict_proba(X) == 1.0)

    def test_max_depth_limits_tree(self):
        X, y = _separable_dataset(400)
        shallow = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8, seed=0).fit(X, y)
        assert shallow.n_nodes <= 3
        assert deep.n_nodes > shallow.n_nodes

    def test_min_samples_leaf_respected(self):
        X, y = _separable_dataset(50)
        tree = DecisionTreeClassifier(min_samples_leaf=20, seed=0).fit(X, y)
        leaves = [n for n in tree._nodes if n.feature is None]
        assert all(leaf.n_samples >= 20 for leaf in leaves)

    def test_rejects_bad_inputs(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            tree.fit(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([0.0, 2.0, 1.0]))

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)


class TestPredict:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 2)))

    def test_feature_count_checked(self):
        X, y = _separable_dataset()
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict_proba(np.zeros((1, 5)))

    def test_probabilities_in_unit_interval(self):
        X, y = _separable_dataset()
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_threshold_changes_predictions(self):
        X, y = _separable_dataset()
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        strict = tree.predict(X, threshold=0.9).sum()
        lenient = tree.predict(X, threshold=0.1).sum()
        assert lenient >= strict

    def test_feature_subsampling_with_sqrt(self):
        X, y = _separable_dataset()
        tree = DecisionTreeClassifier(max_features="sqrt", seed=3).fit(X, y)
        assert tree.is_fitted

    @given(st.integers(min_value=5, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_property_training_accuracy_beats_majority(self, n):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2))
        y = (X[:, 0] > 0).astype(float)
        if y.sum() in (0, n):
            return
        tree = DecisionTreeClassifier(max_depth=6, min_samples_split=2, min_samples_leaf=1, seed=0)
        tree.fit(X, y)
        accuracy = np.mean(tree.predict(X) == y)
        majority = max(y.mean(), 1 - y.mean())
        assert accuracy >= majority
