"""Tests for the supervised prediction dataset builder."""

import numpy as np
import pytest

from repro.baselines.dataset import PredictionDataset, build_prediction_dataset
from repro.core.features import N_FEATURES, NodeFeatureTrack
from repro.utils.timeutils import DAY, HOUR


def _track(node, times, is_ue):
    times = np.asarray(times, dtype=float)
    return NodeFeatureTrack(
        node=node,
        times=times,
        features=np.ones((len(times), N_FEATURES)) * node,
        is_ue=np.asarray(is_ue, dtype=bool),
    )


class TestBuildPredictionDataset:
    def test_labels_within_window_positive(self):
        tracks = {
            0: _track(0, [0.0, 14 * HOUR, 36 * HOUR, 37 * HOUR], [False, False, False, True])
        }
        dataset = build_prediction_dataset(tracks, prediction_window_seconds=DAY)
        # Events at 14h and 36h are within 24h of the UE at 37h; t=0 is not.
        assert dataset.y.tolist() == [0, 1, 1]

    def test_ue_events_are_not_samples(self):
        tracks = {0: _track(0, [0.0, HOUR], [False, True])}
        dataset = build_prediction_dataset(tracks)
        assert len(dataset) == 1

    def test_no_ue_gives_all_negative(self):
        tracks = {0: _track(0, [0.0, HOUR, 2 * HOUR], [False, False, False])}
        dataset = build_prediction_dataset(tracks)
        assert dataset.n_positives == 0

    def test_time_restriction(self):
        tracks = {0: _track(0, [0.0, HOUR, 2 * HOUR, 3 * HOUR], [False, False, False, True])}
        dataset = build_prediction_dataset(tracks, t_start=0.5 * HOUR, t_end=2.5 * HOUR)
        assert len(dataset) == 2
        # Labels may still look beyond t_end: the UE at 3h labels both positive.
        assert dataset.y.tolist() == [1, 1]

    def test_multiple_nodes_concatenated(self):
        tracks = {
            0: _track(0, [0.0, HOUR], [False, False]),
            1: _track(1, [0.0, HOUR, 2 * HOUR], [False, False, True]),
        }
        dataset = build_prediction_dataset(tracks)
        assert len(dataset) == 4
        assert set(dataset.nodes.tolist()) == {0, 1}

    def test_empty_tracks(self):
        dataset = build_prediction_dataset({})
        assert len(dataset) == 0
        assert dataset.positive_rate == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            build_prediction_dataset({}, prediction_window_seconds=0)

    def test_filter_time(self):
        tracks = {0: _track(0, [0.0, HOUR, 2 * HOUR], [False, False, False])}
        dataset = build_prediction_dataset(tracks)
        window = dataset.filter_time(0.5 * HOUR, 1.5 * HOUR)
        assert len(window) == 1

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            PredictionDataset(
                X=np.zeros((2, N_FEATURES)),
                y=np.zeros(3),
                nodes=np.zeros(2, dtype=int),
                times=np.zeros(2),
            )

    def test_realistic_dataset_is_imbalanced(self, feature_tracks):
        dataset = build_prediction_dataset(feature_tracks)
        assert len(dataset) > 100
        assert 0.0 < dataset.positive_rate < 0.5
