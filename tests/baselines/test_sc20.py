"""Tests for the SC20-RF policy."""

import numpy as np
import pytest

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.core.features import N_FEATURES
from repro.core.policies import DecisionContext


@pytest.fixture(scope="module")
def trained(feature_tracks):
    dataset = build_prediction_dataset(feature_tracks)
    forest, seconds = train_sc20_forest(dataset, n_estimators=10, max_depth=8, seed=0)
    return forest, seconds, dataset


def _context(features, ue_cost=10.0, index=-1):
    return DecisionContext(
        time=0.0, node=0, features=features, ue_cost=ue_cost, event_index=index
    )


class TestTrainSC20Forest:
    def test_returns_fitted_forest_and_time(self, trained):
        forest, seconds, _ = trained
        assert forest.is_fitted
        assert seconds > 0

    def test_rejects_empty_dataset(self):
        from repro.baselines.dataset import PredictionDataset

        empty = PredictionDataset(
            X=np.empty((0, N_FEATURES)), y=np.empty(0), nodes=np.empty(0, dtype=int),
            times=np.empty(0),
        )
        with pytest.raises(ValueError):
            train_sc20_forest(empty)

    def test_forest_separates_positive_samples(self, trained):
        forest, _, dataset = trained
        policy = SC20RandomForestPolicy(forest)
        probabilities = policy.predict_probabilities(dataset.X)
        if dataset.n_positives > 0:
            positives = probabilities[dataset.y == 1].mean()
            negatives = probabilities[dataset.y == 0].mean()
            assert positives > negatives


class TestSC20Policy:
    def test_threshold_controls_decision(self, trained):
        forest, _, dataset = trained
        features = dataset.X[int(np.argmax(dataset.y))]
        eager = SC20RandomForestPolicy(forest, threshold=0.0)
        reluctant = SC20RandomForestPolicy(forest, threshold=1.0)
        assert eager.decide(_context(features)) is True
        probability = eager.predict_probability(features)
        assert reluctant.decide(_context(features)) is (probability >= 1.0)

    def test_offset_applied(self, trained):
        forest, _, _ = trained
        policy = SC20RandomForestPolicy(forest, threshold=0.5, threshold_offset=0.05)
        assert policy.effective_threshold == pytest.approx(0.55)

    def test_offset_clipped_to_unit_interval(self, trained):
        forest, _, _ = trained
        policy = SC20RandomForestPolicy(forest, threshold=0.99, threshold_offset=0.05)
        assert policy.effective_threshold == 1.0

    def test_with_threshold_copy(self, trained):
        forest, _, _ = trained
        base = SC20RandomForestPolicy(forest, training_cost_node_hours=1.5)
        derived = base.with_threshold(0.3, offset=0.02, name="SC20-RF-2%")
        assert derived.threshold == 0.3
        assert derived.name == "SC20-RF-2%"
        assert derived.training_cost_node_hours == pytest.approx(1.5)
        assert derived.forest is base.forest

    def test_trace_cache_used(self, trained):
        forest, _, dataset = trained
        policy = SC20RandomForestPolicy(forest, threshold=0.5)
        features = dataset.X[:10]
        policy.prepare_trace(features)
        cached = policy.probability_for(_context(features[3], index=3))
        direct = policy.predict_probability(features[3])
        assert cached == pytest.approx(direct)
        policy.reset()
        assert policy._trace_probabilities is None

    def test_invalid_threshold_rejected(self, trained):
        forest, _, _ = trained
        with pytest.raises(ValueError):
            SC20RandomForestPolicy(forest, threshold=1.5)

    def test_threshold_grid(self):
        grid = SC20RandomForestPolicy.threshold_grid(11)
        assert len(grid) == 11
        assert grid[0] == 0.0 and grid[-1] == 1.0
