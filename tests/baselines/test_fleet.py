"""SegmentedFleetPolicy: per-segment routing over a heterogeneous fleet."""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.baselines.fleet import (
    DEFAULT_SEGMENT_POLICY,
    SEGMENT_POLICY_NAMES,
    SegmentedFleetPolicy,
    build_fleet_policy,
)
from repro.baselines.static import AlwaysMitigatePolicy, NeverMitigatePolicy
from repro.config import ScenarioConfig
from repro.core.policies import DecisionContext, FallbackPolicy
from repro.telemetry.topology import ClusterTopology, FleetSegment


def _topology() -> ClusterTopology:
    return ClusterTopology(
        n_nodes=8,
        dimms_per_node=2,
        manufacturer_shares=(0.5, 0.5),
        segments=(
            FleetSegment(name="hot", n_nodes=4, manufacturer=0, policy="always"),
            FleetSegment(name="cold", n_nodes=4, manufacturer=1, policy="never"),
        ),
    )


def _context(node: int) -> DecisionContext:
    return DecisionContext(
        time=0.0,
        node=node,
        features=np.zeros(4),
        ue_cost=1.0,
    )


class TestRouting:
    def test_decide_routes_by_node(self):
        policy = SegmentedFleetPolicy(
            _topology(), [AlwaysMitigatePolicy(), NeverMitigatePolicy()]
        )
        assert policy.decide(_context(0)) is True
        assert policy.decide(_context(3)) is True
        assert policy.decide(_context(4)) is False
        assert policy.decide(_context(7)) is False

    def test_out_of_range_node_rejected(self):
        policy = SegmentedFleetPolicy(
            _topology(), [AlwaysMitigatePolicy(), NeverMitigatePolicy()]
        )
        with pytest.raises(ValueError):
            policy.decide(_context(8))

    def test_decide_nodes_partitions_by_segment(self):
        policy = SegmentedFleetPolicy(
            _topology(), [AlwaysMitigatePolicy(), NeverMitigatePolicy()]
        )
        nodes = np.array([0, 5, 2, 7, 4])
        out = policy.decide_nodes(
            np.zeros((5, 4)), np.ones(5), times=np.zeros(5), nodes=nodes
        )
        np.testing.assert_array_equal(
            out, np.array([True, False, True, False, False])
        )

    def test_decide_nodes_requires_node_ids(self):
        policy = SegmentedFleetPolicy(
            _topology(), [AlwaysMitigatePolicy(), NeverMitigatePolicy()]
        )
        with pytest.raises(ValueError, match="nodes"):
            policy.decide_nodes(np.zeros((2, 4)), np.ones(2))

    def test_decide_batch_routes_whole_trace_by_its_node(self):
        policy = SegmentedFleetPolicy(
            _topology(), [AlwaysMitigatePolicy(), NeverMitigatePolicy()]
        )
        trace_hot = SimpleNamespace(node=1)
        trace_cold = SimpleNamespace(node=6)
        # Static policies answer decide_batch without touching the trace
        # payload beyond its node, so a stub suffices here.
        hot = policy.decide_batch(trace_hot, np.ones(3), start=0, stop=3)
        cold = policy.decide_batch(trace_cold, np.ones(3), start=0, stop=3)
        assert bool(np.all(hot)) is True
        assert bool(np.any(cold)) is False

    def test_validation(self):
        plain = ClusterTopology(
            n_nodes=8, dimms_per_node=2, manufacturer_shares=(0.5, 0.5)
        )
        with pytest.raises(ValueError, match="segments"):
            SegmentedFleetPolicy(plain, [])
        with pytest.raises(ValueError, match="2 segments"):
            SegmentedFleetPolicy(_topology(), [NeverMitigatePolicy()])

    def test_cost_dependent_is_any_of_the_parts(self):
        static = SegmentedFleetPolicy(
            _topology(), [AlwaysMitigatePolicy(), NeverMitigatePolicy()]
        )
        assert static.cost_dependent is False


class TestBuilder:
    def test_homogeneous_topology_falls_back(self):
        ctx = SimpleNamespace(scenario=ScenarioConfig.small())
        policy = build_fleet_policy(ctx)
        assert isinstance(policy, FallbackPolicy)
        assert policy.name == "Fleet-mix"

    def test_builds_one_policy_per_segment(self):
        scenario = ScenarioConfig.small()
        topology = replace(
            scenario.topology,
            segments=(
                FleetSegment(
                    name="a", n_nodes=24, manufacturer=0, policy="always"
                ),
                FleetSegment(
                    name="b", n_nodes=24, manufacturer=1, policy="never"
                ),
            ),
        )
        ctx = SimpleNamespace(
            scenario=scenario.with_topology(topology),
            mitigation_cost=2.0 / 60.0,
            sc20=lambda: None,
        )
        policy = build_fleet_policy(ctx)
        assert isinstance(policy, SegmentedFleetPolicy)
        assert isinstance(policy.segment_policies[0], AlwaysMitigatePolicy)
        assert isinstance(policy.segment_policies[1], NeverMitigatePolicy)

    def test_untrained_forest_degrades_to_never(self):
        scenario = ScenarioConfig.small()
        topology = replace(
            scenario.topology,
            segments=(
                FleetSegment(name="a", n_nodes=48, manufacturer=0, policy="sc20"),
            ),
        )
        ctx = SimpleNamespace(
            scenario=scenario.with_topology(topology),
            mitigation_cost=2.0 / 60.0,
            sc20=lambda: None,
        )
        policy = build_fleet_policy(ctx)
        assert isinstance(policy.segment_policies[0], NeverMitigatePolicy)

    def test_default_policy_name_is_valid(self):
        assert DEFAULT_SEGMENT_POLICY in SEGMENT_POLICY_NAMES

    def test_unknown_policy_name_rejected(self):
        scenario = ScenarioConfig.small()
        topology = replace(
            scenario.topology,
            segments=(
                FleetSegment(name="a", n_nodes=48, manufacturer=0, policy="llm"),
            ),
        )
        ctx = SimpleNamespace(
            scenario=scenario.with_topology(topology),
            mitigation_cost=2.0 / 60.0,
            sc20=lambda: None,
        )
        with pytest.raises(ValueError, match="llm"):
            build_fleet_policy(ctx)

    def test_shared_policies_are_cached_by_name(self):
        scenario = ScenarioConfig.small()
        topology = replace(
            scenario.topology,
            segments=(
                FleetSegment(name="a", n_nodes=24, manufacturer=0, policy="never"),
                FleetSegment(name="b", n_nodes=24, manufacturer=1, policy="never"),
            ),
        )
        ctx = SimpleNamespace(
            scenario=scenario.with_topology(topology),
            mitigation_cost=2.0 / 60.0,
            sc20=lambda: None,
        )
        policy = build_fleet_policy(ctx)
        assert policy.segment_policies[0] is policy.segment_policies[1]


def test_registry_exposes_fleet_mix_behind_the_toggle():
    from repro.evaluation.pipeline import ExperimentConfig
    from repro.evaluation.registry import enabled_specs, get_approach

    spec = get_approach("Fleet-mix")
    assert spec.group == "rf"
    names_off = [s.name for s in enabled_specs(ExperimentConfig())]
    assert "Fleet-mix" not in names_off
    names_on = [
        s.name
        for s in enabled_specs(ExperimentConfig(include_fleet_mix=True))
    ]
    assert "Fleet-mix" in names_on
    # Canonical ordering: between Myopic-RF and RL.
    assert names_on.index("Fleet-mix") > names_on.index("Myopic-RF")
    assert names_on.index("Fleet-mix") < names_on.index("RL")
