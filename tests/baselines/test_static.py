"""Tests for the static baseline policies."""

import numpy as np
import pytest

from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
    PeriodicMitigatePolicy,
)
from repro.core.features import N_FEATURES
from repro.core.policies import DecisionContext


def _context(**kwargs):
    defaults = dict(time=0.0, node=0, features=np.zeros(N_FEATURES), ue_cost=1.0)
    defaults.update(kwargs)
    return DecisionContext(**defaults)


class TestNeverAlways:
    def test_never(self):
        policy = NeverMitigatePolicy()
        assert policy.decide(_context()) is False
        assert policy.decide(_context(ue_cost=1e9)) is False
        assert policy.name == "Never-mitigate"

    def test_always(self):
        policy = AlwaysMitigatePolicy()
        assert policy.decide(_context()) is True
        assert policy.name == "Always-mitigate"

    def test_zero_training_cost(self):
        assert NeverMitigatePolicy().training_cost_node_hours == 0.0
        assert AlwaysMitigatePolicy().training_cost_node_hours == 0.0


class TestOracle:
    def test_mitigates_only_on_flagged_events(self):
        policy = OraclePolicy()
        assert policy.decide(_context(is_last_event_before_ue=True)) is True
        assert policy.decide(_context(is_last_event_before_ue=False)) is False


class TestPeriodic:
    def test_first_event_triggers(self):
        policy = PeriodicMitigatePolicy(period_hours=24)
        assert policy.decide(_context(time=0.0)) is True

    def test_respects_period(self):
        policy = PeriodicMitigatePolicy(period_hours=1)
        assert policy.decide(_context(time=0.0)) is True
        assert policy.decide(_context(time=1800.0)) is False
        assert policy.decide(_context(time=3700.0)) is True

    def test_reset_clears_state(self):
        policy = PeriodicMitigatePolicy(period_hours=1)
        policy.decide(_context(time=0.0))
        policy.reset()
        assert policy.decide(_context(time=10.0)) is True

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicMitigatePolicy(period_hours=0)

    def test_name_includes_period(self):
        assert PeriodicMitigatePolicy(period_hours=6).name == "Periodic-6h"
