"""Tests for the Myopic-RF expected-cost policy."""

import numpy as np
import pytest

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.core.features import N_FEATURES
from repro.core.policies import DecisionContext


class _StubSC20(SC20RandomForestPolicy):
    """SC20 policy with a fixed probability, for deterministic unit tests."""

    def __init__(self, probability, training_cost_node_hours=0.0):
        # Bypass the parent constructor: no forest is needed.
        self._probability = probability
        self.name = "stub"
        self._training_cost = training_cost_node_hours
        self._trace_probabilities = None

    def probability_for(self, context):
        return self._probability

    def prepare_trace(self, features):
        return None

    def reset(self):
        return None

    @property
    def training_cost_node_hours(self):
        return self._training_cost


def _context(ue_cost):
    return DecisionContext(
        time=0.0, node=0, features=np.zeros(N_FEATURES), ue_cost=ue_cost
    )


class TestMyopicDecisionRule:
    def test_mitigates_when_expected_cost_exceeds_mitigation(self):
        policy = MyopicRFPolicy(_StubSC20(0.5), mitigation_cost_node_hours=1.0)
        assert policy.decide(_context(ue_cost=3.0)) is True

    def test_does_not_mitigate_when_expected_cost_below(self):
        policy = MyopicRFPolicy(_StubSC20(0.01), mitigation_cost_node_hours=1.0)
        assert policy.decide(_context(ue_cost=10.0)) is False

    def test_boundary_is_strict(self):
        policy = MyopicRFPolicy(_StubSC20(0.5), mitigation_cost_node_hours=1.0)
        assert policy.decide(_context(ue_cost=2.0)) is False

    def test_adapts_to_ue_cost(self):
        policy = MyopicRFPolicy(_StubSC20(0.001), mitigation_cost_node_hours=2 / 60)
        assert policy.decide(_context(ue_cost=1.0)) is False
        assert policy.decide(_context(ue_cost=1000.0)) is True

    def test_training_cost_shared_with_sc20(self):
        policy = MyopicRFPolicy(_StubSC20(0.5, training_cost_node_hours=2.5), 1.0)
        assert policy.training_cost_node_hours == pytest.approx(2.5)

    def test_rejects_negative_mitigation_cost(self):
        with pytest.raises(ValueError):
            MyopicRFPolicy(_StubSC20(0.5), mitigation_cost_node_hours=-1)


class TestMyopicWithRealForest:
    def test_runs_on_generated_data(self, feature_tracks):
        dataset = build_prediction_dataset(feature_tracks)
        forest, _ = train_sc20_forest(dataset, n_estimators=5, seed=0)
        sc20 = SC20RandomForestPolicy(forest, threshold=0.5)
        policy = MyopicRFPolicy(sc20, mitigation_cost_node_hours=2 / 60)
        features = dataset.X[:20]
        policy.prepare_trace(features)
        decisions = [
            policy.decide(
                DecisionContext(
                    time=0.0, node=0, features=features[i], ue_cost=100.0, event_index=i
                )
            )
            for i in range(len(features))
        ]
        assert all(isinstance(d, bool) for d in decisions)
