"""Tests for the from-scratch random forest."""

import numpy as np
import pytest

from repro.baselines.random_forest import RandomForestClassifier


def _dataset(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = ((X[:, 0] > 0) & (X[:, 1] + X[:, 2] > -0.5)).astype(float)
    return X, y


class TestRandomForest:
    def test_learns_nonlinear_boundary(self):
        X, y = _dataset()
        forest = RandomForestClassifier(n_estimators=20, max_depth=6, seed=0).fit(X, y)
        accuracy = np.mean(forest.predict(X) == y)
        assert accuracy > 0.9

    def test_probabilities_are_ensemble_means(self):
        X, y = _dataset(100)
        forest = RandomForestClassifier(n_estimators=5, max_depth=3, seed=1).fit(X, y)
        proba = forest.predict_proba(X)
        manual = np.mean([t.predict_proba(X) for t in forest.trees_], axis=0)
        assert np.allclose(proba, manual)

    def test_probability_range(self):
        X, y = _dataset(100)
        forest = RandomForestClassifier(n_estimators=10, seed=2).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_reproducible_with_seed(self):
        X, y = _dataset(150)
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_all_negative_labels_predict_zero(self):
        X = np.random.default_rng(0).normal(size=(50, 3))
        y = np.zeros(50)
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        assert np.all(forest.predict_proba(X) == 0.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((4, 2)), np.zeros(3))

    def test_without_bootstrap(self):
        X, y = _dataset(80)
        forest = RandomForestClassifier(n_estimators=3, bootstrap=False, seed=0).fit(X, y)
        assert forest.is_fitted

    def test_ensemble_smoother_than_single_tree(self):
        X, y = _dataset(200, seed=5)
        forest = RandomForestClassifier(n_estimators=30, max_depth=4, seed=5).fit(X, y)
        proba = forest.predict_proba(X)
        # A 30-tree ensemble should produce intermediate probabilities, not
        # only hard 0/1 votes.
        assert np.any((proba > 0.05) & (proba < 0.95))
