"""The curated public surface: ``repro.__all__`` and ``repro.evaluation``.

The top-level package exports exactly the blessed API.  Pipeline internals
are importable only from their home modules (:mod:`repro.evaluation.pipeline`
and :mod:`repro.evaluation.executor`) — the one-release deprecation shim
that kept them importable from the package is gone.
"""

from __future__ import annotations

import importlib
import subprocess
import sys

import pytest

import repro
import repro.evaluation as evaluation


class TestTopLevelSurface:
    def test_every_blessed_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_dir_covers_the_blessed_names(self):
        listed = dir(repro)
        for name in repro.__all__:
            assert name in listed

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.bogus_name

    def test_blessed_names_match_their_home_modules(self):
        from repro.evaluation.sweep import SweepSpec
        from repro.store import ArtifactStore
        from repro.study import Study

        assert repro.Study is Study
        assert repro.ArtifactStore is ArtifactStore
        assert repro.SweepSpec is SweepSpec

    def test_import_repro_is_lightweight(self):
        """``import repro`` must not drag in the evaluation engine (PEP 562)."""
        code = (
            "import sys; import repro; "
            "assert 'repro.evaluation' not in sys.modules, 'eager import'; "
            "repro.Study; "
            "assert 'repro.evaluation' in sys.modules"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(importlib.import_module("pathlib").Path(__file__).parents[1]),
        )


class TestEvaluationSurface:
    PUBLIC = ("run_experiment", "run_sweep", "SweepSpec", "ExperimentConfig",
              "PreparedDataCache", "format_cost_table", "register_approach")
    INTERNAL = ("build_split_tasks", "prepared_data_key", "trace_cache_stats",
                "train_split", "evaluate_split", "aggregate", "make_splits",
                "prepare_data", "execute_tasks", "Task", "SplitContext",
                "GroupOutcome")
    # Where each internal actually lives — the supported import path.
    HOMES = {"execute_tasks": "repro.evaluation.executor",
             "Task": "repro.evaluation.executor"}

    def test_public_names_stay_in_all(self):
        for name in self.PUBLIC:
            assert name in evaluation.__all__, name

    def test_internals_removed_from_all(self):
        for name in self.INTERNAL:
            assert name not in evaluation.__all__, name

    @pytest.mark.parametrize("name", INTERNAL)
    def test_old_import_path_is_gone(self, name):
        """The deprecation shim served its one release and is removed."""
        with pytest.raises(AttributeError, match="no attribute"):
            getattr(evaluation, name)

    @pytest.mark.parametrize("name", INTERNAL)
    def test_home_module_import_path_works(self, name):
        home = self.HOMES.get(name, "repro.evaluation.pipeline")
        assert getattr(importlib.import_module(home), name) is not None

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            evaluation.definitely_not_a_name

    def test_dir_lists_only_the_public_surface(self):
        listed = dir(evaluation)
        for name in self.INTERNAL:
            assert name not in listed, name
        for name in self.PUBLIC:
            assert name in listed, name
