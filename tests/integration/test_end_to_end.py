"""Integration tests: the full pipeline on the shared small scenario."""

import numpy as np
import pytest

from repro.baselines import (
    AlwaysMitigatePolicy,
    MyopicRFPolicy,
    NeverMitigatePolicy,
    OraclePolicy,
    SC20RandomForestPolicy,
    build_prediction_dataset,
    train_sc20_forest,
)
from repro.core import (
    DDDQNAgent,
    DQNConfig,
    MitigationEnv,
    RLPolicy,
    StateNormalizer,
    TabularQAgent,
    train_agent,
)
from repro.evaluation import build_traces, evaluate_policies, evaluate_policy
from repro.utils.timeutils import DAY


@pytest.fixture(scope="module")
def split(feature_tracks, job_sampler, scenario):
    """A single train/test split over the shared scenario data."""
    t_split = 0.6 * scenario.duration_seconds
    train_tracks = {
        node: track.slice_time(0.0, t_split) for node, track in feature_tracks.items()
    }
    train_tracks = {
        node: track
        for node, track in train_tracks.items()
        if len(track) and track.n_decision_points > 0
    }
    test_traces = build_traces(
        feature_tracks, job_sampler, t_split, scenario.duration_seconds, seed=7
    )
    return train_tracks, test_traces, t_split


class TestStaticPoliciesEndToEnd:
    def test_static_policy_cost_ordering(self, split):
        _, test_traces, _ = split
        results = evaluate_policies(
            test_traces,
            [NeverMitigatePolicy(), AlwaysMitigatePolicy(), OraclePolicy()],
            mitigation_cost=2 / 60,
        )
        never = results["Never-mitigate"].costs
        always = results["Always-mitigate"].costs
        oracle = results["Oracle"].costs
        assert oracle.total < never.total
        assert always.ue_cost <= never.ue_cost
        # Always mitigates wherever the Oracle does (and more), so its UE
        # cost lower-bounds the Oracle's; both stay below Never-mitigate.
        assert always.ue_cost <= oracle.ue_cost + 1e-6
        assert oracle.ue_cost <= never.ue_cost + 1e-6
        assert oracle.mitigation_cost < always.mitigation_cost

    def test_mitigation_cost_sweep_only_changes_overhead(self, split):
        _, test_traces, _ = split
        cheap = evaluate_policy(test_traces, AlwaysMitigatePolicy(), 2 / 60)
        expensive = evaluate_policy(test_traces, AlwaysMitigatePolicy(), 10 / 60)
        assert expensive.costs.ue_cost == pytest.approx(cheap.costs.ue_cost)
        assert expensive.costs.mitigation_cost == pytest.approx(
            5 * cheap.costs.mitigation_cost
        )


class TestForestPipeline:
    def test_sc20_beats_never_with_good_threshold(self, split, feature_tracks):
        train_tracks, test_traces, t_split = split
        dataset = build_prediction_dataset(feature_tracks, t_end=t_split)
        forest, _ = train_sc20_forest(dataset, n_estimators=15, max_depth=8, seed=0)
        best_total = np.inf
        for threshold in np.linspace(0, 1, 11):
            policy = SC20RandomForestPolicy(forest, threshold=float(threshold))
            total = evaluate_policy(test_traces, policy, 2 / 60).costs.total
            best_total = min(best_total, total)
        never_total = evaluate_policy(test_traces, NeverMitigatePolicy(), 2 / 60).costs.total
        assert best_total < never_total

    def test_myopic_policy_runs(self, split, feature_tracks):
        train_tracks, test_traces, t_split = split
        dataset = build_prediction_dataset(feature_tracks, t_end=t_split)
        forest, _ = train_sc20_forest(dataset, n_estimators=10, seed=1)
        sc20 = SC20RandomForestPolicy(forest, threshold=0.5)
        myopic = MyopicRFPolicy(sc20, mitigation_cost_node_hours=2 / 60)
        result = evaluate_policy(test_traces, myopic, 2 / 60)
        assert result.costs.total > 0


class TestRLPipeline:
    def test_training_and_evaluation(self, split, job_sampler):
        train_tracks, test_traces, t_split = split
        normalizer = StateNormalizer()
        env = MitigationEnv(
            train_tracks,
            job_sampler,
            mitigation_cost=2 / 60,
            t_start=0.0,
            t_end=t_split,
            normalizer=normalizer,
            seed=4,
        )
        agent = DDDQNAgent(
            env.state_dim,
            DQNConfig(
                hidden_sizes=(32, 16), warmup_transitions=64, batch_size=16,
                epsilon_decay_steps=1500, seed=2,
            ),
        )
        result = train_agent(env, agent, n_episodes=80)
        assert result.n_episodes == 80

        rl_policy = RLPolicy(agent, normalizer)
        rl = evaluate_policy(test_traces, rl_policy, 2 / 60)
        never = evaluate_policy(test_traces, NeverMitigatePolicy(), 2 / 60)
        always = evaluate_policy(test_traces, AlwaysMitigatePolicy(), 2 / 60)
        # Even a briefly trained agent must stay within the static envelope
        # and produce a valid cost accounting.
        assert rl.costs.total > 0
        assert rl.costs.n_mitigations <= always.costs.n_mitigations
        assert rl.costs.ue_cost <= never.costs.ue_cost + 1e-6

    def test_tabular_agent_in_environment(self, split, job_sampler):
        train_tracks, _, t_split = split
        normalizer = StateNormalizer()
        env = MitigationEnv(
            train_tracks, job_sampler, mitigation_cost=2 / 60,
            t_start=0.0, t_end=t_split, normalizer=normalizer, seed=5,
        )
        agent = TabularQAgent(env.state_dim)
        result = train_agent(env, agent, n_episodes=30)
        assert result.n_episodes == 30
        assert agent.n_visited_states > 1
