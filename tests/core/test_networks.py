"""Tests for the NumPy dueling Q-network, Adam and the Huber loss."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.networks import AdamOptimizer, DuelingQNetwork, huber_grad, huber_loss


class TestHuber:
    def test_quadratic_inside_delta(self):
        assert huber_loss(np.array([0.5]), delta=1.0)[0] == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        assert huber_loss(np.array([3.0]), delta=1.0)[0] == pytest.approx(0.5 + 2.0)

    def test_grad_clipped(self):
        grads = huber_grad(np.array([-5.0, -0.5, 0.5, 5.0]), delta=1.0)
        assert grads.tolist() == [-1.0, -0.5, 0.5, 1.0]

    @given(st.floats(min_value=-1e3, max_value=1e3), st.floats(min_value=0.1, max_value=100))
    def test_property_loss_non_negative_and_grad_bounded(self, error, delta):
        assert huber_loss(np.array([error]), delta)[0] >= 0.0
        assert abs(huber_grad(np.array([error]), delta)[0]) <= delta + 1e-12


class TestAdam:
    def test_minimises_quadratic(self):
        params = [np.array([5.0])]
        adam = AdamOptimizer(learning_rate=0.1)
        for _ in range(500):
            grads = [2 * params[0]]
            adam.update(params, grads)
        assert abs(params[0][0]) < 0.05

    def test_mismatched_lengths_rejected(self):
        adam = AdamOptimizer()
        with pytest.raises(ValueError):
            adam.update([np.zeros(2)], [np.zeros(2), np.zeros(2)])

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            AdamOptimizer(learning_rate=0)


class TestDuelingQNetwork:
    def test_output_shape(self):
        net = DuelingQNetwork(6, hidden_sizes=(16, 8), n_actions=2, seed=0)
        q = net.forward(np.zeros((5, 6)))
        assert q.shape == (5, 2)

    def test_single_state_is_promoted_to_batch(self):
        net = DuelingQNetwork(6, hidden_sizes=(8,), n_actions=2, seed=0)
        q = net.forward(np.zeros(6))
        assert q.shape == (1, 2)

    def test_wrong_input_dim_rejected(self):
        net = DuelingQNetwork(6, hidden_sizes=(8,), seed=0)
        with pytest.raises(ValueError):
            net.forward(np.zeros((2, 5)))

    def test_clone_and_copy(self):
        net = DuelingQNetwork(4, hidden_sizes=(8, 8), seed=0)
        clone = net.clone()
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert np.allclose(net.forward(x), clone.forward(x))
        # Mutate the original; the clone must not change.
        net.weights[0][...] += 1.0
        assert not np.allclose(net.forward(x), clone.forward(x))

    def test_state_dict_roundtrip(self):
        net = DuelingQNetwork(4, hidden_sizes=(8,), seed=1)
        other = DuelingQNetwork(4, hidden_sizes=(8,), seed=2)
        other.load_state_dict(net.state_dict())
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert np.allclose(net.forward(x), other.forward(x))

    def test_dueling_identity(self):
        # Q(s,a) = V(s) + A(s,a) - mean_a A(s,a): the mean over actions of Q
        # equals V, so subtracting the mean of Q recovers the centred advantage.
        net = DuelingQNetwork(4, hidden_sizes=(8,), n_actions=3, seed=3)
        x = np.random.default_rng(1).normal(size=(6, 4))
        q = net.forward(x, cache=True)
        h = net._cache.activations[-1]
        value = h @ net.value_w + net.value_b
        assert np.allclose(q.mean(axis=1, keepdims=True), value)

    def test_numerical_gradient_check_dueling(self):
        self._gradient_check(dueling=True)

    def test_numerical_gradient_check_vanilla(self):
        self._gradient_check(dueling=False)

    @staticmethod
    def _gradient_check(dueling):
        rng = np.random.default_rng(0)
        net = DuelingQNetwork(5, hidden_sizes=(7, 6), n_actions=2, dueling=dueling, seed=4)
        x = rng.normal(size=(4, 5))
        target = rng.normal(size=(4, 2))

        def loss_fn():
            q = net.forward(x)
            return 0.5 * np.sum((q - target) ** 2)

        q = net.forward(x, cache=True)
        grads = net.backward(q - target)
        params = net.parameters()
        epsilon = 1e-6
        # Spot-check a few entries of every parameter tensor.
        for param, grad in zip(params, grads):
            flat = param.reshape(-1)
            flat_grad = grad.reshape(-1)
            for idx in rng.choice(flat.size, size=min(3, flat.size), replace=False):
                original = flat[idx]
                flat[idx] = original + epsilon
                plus = loss_fn()
                flat[idx] = original - epsilon
                minus = loss_fn()
                flat[idx] = original
                numeric = (plus - minus) / (2 * epsilon)
                assert numeric == pytest.approx(flat_grad[idx], rel=1e-4, abs=1e-5)

    def test_backward_without_cache_raises(self):
        net = DuelingQNetwork(4, hidden_sizes=(8,), seed=0)
        with pytest.raises(RuntimeError):
            net.backward(np.zeros((1, 2)))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(5)
        net = DuelingQNetwork(3, hidden_sizes=(32, 16), n_actions=2, seed=5)
        adam = AdamOptimizer(1e-2)
        x = rng.normal(size=(64, 3))
        target = np.stack([x[:, 0] + x[:, 1], x[:, 2] - x[:, 0]], axis=1)

        def step():
            q = net.forward(x, cache=True)
            diff = q - target
            grads = net.backward(diff / len(x))
            adam.update(net.parameters(), grads)
            return float(np.mean(diff**2))

        first = step()
        for _ in range(300):
            last = step()
        assert last < first * 0.2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DuelingQNetwork(0)
        with pytest.raises(ValueError):
            DuelingQNetwork(4, hidden_sizes=())
