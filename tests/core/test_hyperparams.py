"""Tests for the two-round random hyperparameter search."""

import numpy as np
import pytest

from repro.core.dqn import DQNConfig
from repro.core.hyperparams import HyperparameterSpace, RandomSearchResult, random_search


class TestHyperparameterSpace:
    def test_sample_within_bounds(self):
        space = HyperparameterSpace()
        rng = np.random.default_rng(0)
        for _ in range(50):
            params = space.sample(rng)
            assert space.learning_rate[0] <= params["learning_rate"] <= space.learning_rate[1]
            assert 0.0 < params["gamma"] < 1.0
            assert params["batch_size"] in space.batch_sizes
            assert params["train_frequency"] in space.train_frequencies
            assert params["target_sync_frequency"] in space.target_sync_frequencies
            assert space.per_alphas[0] <= params["per_alpha"] <= space.per_alphas[1]

    def test_sampled_params_build_valid_config(self):
        space = HyperparameterSpace()
        params = space.sample(np.random.default_rng(1))
        config = DQNConfig().with_overrides(**params)
        assert isinstance(config, DQNConfig)

    def test_narrowed_space_contains_best(self):
        space = HyperparameterSpace()
        best = {"learning_rate": 1e-3, "gamma": 0.97}
        narrowed = space.narrowed_around(best)
        assert narrowed.learning_rate[0] <= 1e-3 <= narrowed.learning_rate[1]
        width_before = space.learning_rate[1] / space.learning_rate[0]
        width_after = narrowed.learning_rate[1] / narrowed.learning_rate[0]
        assert width_after < width_before

    def test_narrow_rejects_bad_shrink(self):
        with pytest.raises(ValueError):
            HyperparameterSpace().narrowed_around({"learning_rate": 1e-3, "gamma": 0.9}, shrink=0)


class TestRandomSearch:
    def test_finds_good_learning_rate(self):
        # Score peaks when the learning rate is close to 1e-3.
        def evaluate(params):
            return -abs(np.log10(params["learning_rate"]) - np.log10(1e-3))

        result = random_search(evaluate, n_initial=30, n_refine=10, seed=0)
        assert result.n_trials == 40
        assert abs(np.log10(result.best_params["learning_rate"]) + 3) < 0.5

    def test_refinement_never_worsens_best(self):
        def evaluate(params):
            return params["gamma"]

        with_refine = random_search(evaluate, n_initial=10, n_refine=10, seed=1)
        without = random_search(evaluate, n_initial=10, n_refine=0, seed=1)
        assert with_refine.best_score >= without.best_score

    def test_best_config_applies_overrides(self):
        result = RandomSearchResult(
            best_params={"learning_rate": 5e-4, "gamma": 0.9}, best_score=1.0
        )
        config = result.best_config()
        assert config.learning_rate == 5e-4
        assert config.gamma == 0.9

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            random_search(lambda p: 0.0, n_initial=0)

    def test_deterministic_given_seed(self):
        def evaluate(params):
            return params["learning_rate"]

        a = random_search(evaluate, n_initial=5, n_refine=0, seed=7)
        b = random_search(evaluate, n_initial=5, n_refine=0, seed=7)
        assert a.best_params == b.best_params
