"""Flag gating of the opt-in compiled kernel layer.

Two environments exercise this file.  Without numba (the default — the
extra is opt-in) the flag-off path must never even try the import, and
the flag-on path must fall back to the numpy kernels after a single
warning: the zero-new-dependency contract of
``ExperimentConfig.compiled`` / ``REPRO_COMPILED``.  With numba
installed (the CI ``compiled`` leg) the fallback tests skip and the
compiled kernels themselves are checked against their numpy references.
"""

from __future__ import annotations

import importlib.util
import sys
import warnings

import numpy as np
import pytest

from repro.core import kernels

NUMBA_MISSING = importlib.util.find_spec("numba") is None


@pytest.fixture(autouse=True)
def _pristine_flag(monkeypatch):
    """Each test starts from flag-off with the one-shot warning re-armed."""
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    monkeypatch.setattr(kernels, "_REQUESTED", None)
    monkeypatch.setattr(kernels, "_IMPL", None)
    monkeypatch.setattr(kernels, "_WARNED", False)
    yield


def test_flag_off_means_no_kernels():
    assert not kernels.compiled_requested()
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning would fail the test
        assert kernels.active() is None
    assert not kernels.compiled_available()


@pytest.mark.skipif(not NUMBA_MISSING, reason="numba is installed")
def test_flag_off_never_imports_numba():
    # The lazy import lives behind the flag: with it off, numba must not
    # appear in sys.modules (it is not installed here, so an attempted
    # import would be visible as a cached ImportError entry either way).
    assert kernels.active() is None
    assert "numba" not in sys.modules


@pytest.mark.skipif(not NUMBA_MISSING, reason="numba is installed")
def test_flag_on_without_numba_warns_once_then_falls_back():
    kernels.set_compiled(True)
    assert kernels.compiled_requested()
    with pytest.warns(RuntimeWarning, match="numba"):
        assert kernels.active() is None
    assert not kernels.compiled_available()
    # Subsequent lookups stay on the numpy path silently.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.active() is None


def test_env_variable_enables_the_flag(monkeypatch):
    for value in ("1", "true", "ON", "Yes"):
        monkeypatch.setenv("REPRO_COMPILED", value)
        assert kernels.compiled_requested(), value
    for value in ("", "0", "off", "no", "false"):
        monkeypatch.setenv("REPRO_COMPILED", value)
        assert not kernels.compiled_requested(), value


def test_apply_config_only_ever_enables(monkeypatch):
    # Config flag off leaves the process default (here: env on) in place.
    monkeypatch.setenv("REPRO_COMPILED", "1")
    kernels.apply_config(False)
    assert kernels.compiled_requested()
    # Config flag on enables even without the env variable.
    monkeypatch.delenv("REPRO_COMPILED")
    kernels.set_compiled(None)
    kernels.apply_config(True)
    assert kernels.compiled_requested()


def test_set_compiled_none_restores_env_default(monkeypatch):
    kernels.set_compiled(True)
    assert kernels.compiled_requested()
    kernels.set_compiled(None)
    assert not kernels.compiled_requested()
    monkeypatch.setenv("REPRO_COMPILED", "1")
    kernels.set_compiled(False)
    assert not kernels.compiled_requested()  # explicit off beats the env
    kernels.set_compiled(None)
    assert kernels.compiled_requested()


@pytest.mark.skipif(NUMBA_MISSING, reason="needs the 'compiled' extra")
class TestCompiledKernelsMatchNumpy:
    """With numba installed the kernels must equal their numpy references."""

    def _namespace(self):
        kernels.set_compiled(True)
        namespace = kernels.active()
        assert namespace is not None and kernels.compiled_available()
        return namespace

    def test_sumtree_descend_matches_scalar_sample(self):
        from repro.core.replay import SumTree

        namespace = self._namespace()
        rng = np.random.default_rng(3)
        tree = SumTree(37)
        tree.update_many(rng.integers(0, 37, size=60), rng.random(60))
        values = np.clip(
            rng.uniform(0, tree.total, size=100),
            0.0,
            np.nextafter(tree.total, 0.0),
        )
        scalar = np.array([tree.sample(float(v))[0] for v in values])
        n_internal = tree.capacity - 1
        leaves = namespace.sumtree_descend(tree._tree, values, n_internal)
        assert np.array_equal(leaves - n_internal, scalar)

    def test_account_costs_matches_python_recurrence(self):
        namespace = self._namespace()
        rng = np.random.default_rng(5)
        n = 200
        times = np.sort(rng.uniform(0, 1e6, size=n))
        is_ue = rng.random(n) < 0.1
        mask = rng.random(n) < 0.3
        job_start = times - rng.uniform(0, 1e4, size=n)
        job_nodes = rng.integers(1, 64, size=n).astype(float)
        hour = 3600.0
        expected = np.empty(n)
        last_mit = last_ue = -1
        for i in range(n):
            if last_mit >= 0 and last_mit > last_ue:
                reference = max(job_start[i], times[last_mit])
            else:
                reference = job_start[i]
            expected[i] = job_nodes[i] * max(0.0, times[i] - reference) / hour
            if mask[i]:
                last_mit = i
            if is_ue[i]:
                last_ue = i
        got = namespace.account_costs(
            times, is_ue, mask, job_start, job_nodes, hour
        )
        assert np.array_equal(got, expected)


def test_flag_on_replay_matches_flag_off(job_sampler, monkeypatch):
    """With the flag on (numba absent → numpy fallback) the evaluation
    pipeline must produce bit-identical results to the flag-off run."""
    import numpy as np

    from repro.evaluation.runner import EvaluationTrace, evaluate_policy
    from repro.core.policies import MitigationPolicy
    from repro.utils.rng import RngFactory

    class _Threshold(MitigationPolicy):
        name = "threshold"
        cost_dependent = True

        def decide(self, context):
            return context.ue_cost > 1.0

        def decide_batch(self, trace, ue_costs=None, start=0, stop=None):
            if ue_costs is None:
                return None
            return np.asarray(ue_costs, dtype=float) > 1.0

    rng = np.random.default_rng(7)
    times = np.sort(rng.uniform(0.0, 400_000.0, size=60))
    trace = EvaluationTrace(
        node=0,
        times=times,
        features=np.zeros((60, 3)),
        is_ue=rng.random(60) < 0.1,
        is_last_before_ue=np.zeros(60, dtype=bool),
        timeline=job_sampler.sample_timeline(
            0.0, 500_000.0, rng=RngFactory(3).stream("kernel-test")
        ),
    )
    off = evaluate_policy([trace], _Threshold(), 2 / 60.0, restartable=True)
    kernels.set_compiled(True)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        on = evaluate_policy([trace], _Threshold(), 2 / 60.0, restartable=True)
    assert off.costs == on.costs
    assert off.confusion == on.confusion
