"""Tests for the episode-based training loop."""

import numpy as np
import pytest

from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.environment import MitigationEnv
from repro.core.features import N_FEATURES, NodeFeatureTrack
from repro.core.trainer import TrainingResult, train_agent
from repro.utils.timeutils import HOUR
from repro.workload.job import JobLog, JobRecord
from repro.workload.sampling import JobSequenceSampler


@pytest.fixture()
def tiny_env():
    times = np.array([HOUR, 2 * HOUR, 3 * HOUR, 4 * HOUR])
    tracks = {
        0: NodeFeatureTrack(
            node=0,
            times=times,
            features=np.ones((4, N_FEATURES)),
            is_ue=np.array([False, False, False, True]),
        ),
        1: NodeFeatureTrack(
            node=1,
            times=times,
            features=np.zeros((4, N_FEATURES)),
            is_ue=np.zeros(4, dtype=bool),
        ),
    }
    jobs = JobLog.from_records(
        [JobRecord(submit=0, start=0, end=50 * HOUR, n_nodes=2, job_id=0)]
    )
    sampler = JobSequenceSampler(jobs, seed=0)
    return MitigationEnv(tracks, sampler, mitigation_cost=2 / 60.0, seed=2)


@pytest.fixture()
def tiny_agent(tiny_env):
    return DDDQNAgent(
        tiny_env.state_dim,
        DQNConfig(
            hidden_sizes=(8, 8), warmup_transitions=8, batch_size=4,
            epsilon_decay_steps=50, seed=0,
        ),
    )


class TestTrainAgent:
    def test_runs_requested_episodes(self, tiny_env, tiny_agent):
        result = train_agent(tiny_env, tiny_agent, n_episodes=10)
        assert result.n_episodes == 10
        assert len(result.episode_mitigations) == 10
        assert result.env_steps > 0
        assert result.wallclock_seconds > 0

    def test_rewards_non_positive(self, tiny_env, tiny_agent):
        result = train_agent(tiny_env, tiny_agent, n_episodes=5)
        assert all(r <= 0 for r in result.episode_rewards)

    def test_max_steps_cap(self, tiny_env, tiny_agent):
        result = train_agent(tiny_env, tiny_agent, n_episodes=3, max_steps_per_episode=1)
        assert result.env_steps == 3

    def test_callback_invoked(self, tiny_env, tiny_agent):
        seen = []
        train_agent(
            tiny_env, tiny_agent, n_episodes=4, callback=lambda i, r: seen.append((i, r))
        )
        assert [i for i, _ in seen] == [0, 1, 2, 3]

    def test_rejects_zero_episodes(self, tiny_env, tiny_agent):
        with pytest.raises(ValueError):
            train_agent(tiny_env, tiny_agent, n_episodes=0)

    def test_agent_learning_happens(self, tiny_env, tiny_agent):
        train_agent(tiny_env, tiny_agent, n_episodes=30)
        assert tiny_agent.train_steps > 0
        assert tiny_agent.env_steps > 0


class TestTrainingResult:
    def test_mean_and_tail(self):
        result = TrainingResult(episode_rewards=[-10.0, -5.0, -1.0, -1.0])
        assert result.mean_reward == pytest.approx(-4.25)
        assert result.tail_mean_reward(0.5) == pytest.approx(-1.0)

    def test_empty_result(self):
        result = TrainingResult()
        assert result.mean_reward == 0.0
        assert result.tail_mean_reward() == 0.0
        assert result.training_cost_node_hours == 0.0

    def test_training_cost_conversion(self):
        result = TrainingResult(wallclock_seconds=7200.0)
        assert result.training_cost_node_hours == pytest.approx(2.0)
