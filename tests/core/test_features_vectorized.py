"""Equivalence suite: vectorized feature extraction vs the reference loop.

``extract_node_features`` was rewritten with cumulative array operations;
``_extract_node_features_loop`` keeps the original per-event accumulation
as the behavioural specification.  Both must agree *bit for bit* on fuzzed
synthetic logs — the feature tracks feed every model downstream, so a
single differing ulp would eventually surface as a golden-fingerprint
drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.core.features import (
    N_FEATURES,
    _extract_node_features_loop,
    extract_node_features,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.records import EventKind
from repro.telemetry.reduction import prepare_log


def _assert_tracks_identical(log, merge_window=60.0):
    for node, indices in log.node_slices().items():
        loop = _extract_node_features_loop(log, node, indices, merge_window)
        vectorized = extract_node_features(log, node, indices, merge_window)
        assert np.array_equal(loop.times, vectorized.times), node
        assert np.array_equal(loop.is_ue, vectorized.is_ue), node
        assert np.array_equal(loop.features, vectorized.features), (
            node,
            np.argwhere(loop.features != vectorized.features)[:5],
        )


@pytest.mark.parametrize("seed", [3, 17, 101])
def test_fuzzed_generated_logs_extract_identically(seed):
    scenario = ScenarioConfig.small(seed=seed)
    log = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        30 * 86400.0,
        seed=seed,
    ).generate()
    reduced, _ = prepare_log(log, scenario.evaluation.ue_burst_window_seconds)
    _assert_tracks_identical(reduced)


def test_session_log_extracts_identically(reduced_error_log):
    _assert_tracks_identical(reduced_error_log)


def _log_from_columns(**columns):
    length = len(columns["time"])
    defaults = dict(
        node=np.zeros(length, dtype=np.int64),
        dimm=np.zeros(length, dtype=np.int64),
        ce_count=np.zeros(length, dtype=np.int64),
        rank=np.full(length, -1, dtype=np.int32),
        bank=np.full(length, -1, dtype=np.int32),
        row=np.full(length, -1, dtype=np.int64),
        col=np.full(length, -1, dtype=np.int64),
        scrubber=np.zeros(length, dtype=bool),
        manufacturer=np.zeros(length, dtype=np.int8),
    )
    defaults.update(columns)
    return ErrorLog(**defaults)


def test_handcrafted_edge_log_extracts_identically():
    """Boots, warnings, missing rank/bank coordinates, bursts, and UEs."""
    kind = np.array(
        [
            EventKind.BOOT,
            EventKind.CE,
            EventKind.CE,
            EventKind.CE,
            EventKind.UE_WARNING,
            EventKind.CE,
            EventKind.UE,
            EventKind.CE,
            EventKind.BOOT,
            EventKind.CE,
        ],
        dtype=np.int8,
    )
    log = _log_from_columns(
        time=np.array(
            [0.0, 30.0, 45.0, 3600.0, 3620.0, 3640.0, 7200.0, 7260.0, 9000.0, 9030.0]
        ),
        kind=kind,
        ce_count=np.array([0, 3, 2, 1, 0, 4, 0, 2, 0, 7], dtype=np.int64),
        dimm=np.array([0, 1, 1, 2, 0, 1, 0, 2, 0, 1], dtype=np.int64),
        rank=np.array([-1, 0, 0, 1, -1, -1, -1, 1, -1, 0], dtype=np.int32),
        bank=np.array([-1, 2, -1, 0, -1, 2, -1, 0, -1, 2], dtype=np.int32),
        row=np.array([-1, 7, -1, 5, -1, -1, -1, 5, -1, 8], dtype=np.int64),
        col=np.array([-1, -1, 3, 1, -1, 9, -1, 1, -1, -1], dtype=np.int64),
    )
    _assert_tracks_identical(log)
    track = extract_node_features(log, 0)
    assert track.features.shape[1] == N_FEATURES
    assert track.is_ue.any()


def test_empty_node_yields_empty_track():
    log = _log_from_columns(
        time=np.array([10.0]),
        kind=np.array([EventKind.CE], dtype=np.int8),
        ce_count=np.array([1], dtype=np.int64),
        node=np.array([3], dtype=np.int64),
    )
    track = extract_node_features(log, node=99)
    reference = _extract_node_features_loop(log, node=99)
    assert len(track) == 0 and len(reference) == 0
    assert track.features.shape == (0, N_FEATURES)
