"""Tests for the DDDQN agent."""

import numpy as np
import pytest

from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.mdp import Transition
from repro.core.replay import PrioritizedReplayBuffer, UniformReplayBuffer


def _config(**overrides):
    defaults = dict(
        hidden_sizes=(16, 8),
        warmup_transitions=8,
        batch_size=4,
        epsilon_decay_steps=50,
        buffer_capacity=256,
        seed=0,
    )
    defaults.update(overrides)
    return DQNConfig(**defaults)


def _transition(rng, state_dim=4, done=False, reward=0.0):
    state = rng.normal(size=state_dim)
    return Transition(
        state=state,
        action=int(rng.integers(2)),
        reward=reward,
        next_state=None if done else rng.normal(size=state_dim),
        done=done,
    )


class TestDQNConfig:
    def test_defaults_valid(self):
        config = DQNConfig()
        assert config.dueling and config.double and config.prioritized

    @pytest.mark.parametrize(
        "field,value",
        [
            ("learning_rate", 0),
            ("gamma", 1.5),
            ("batch_size", 0),
            ("epsilon_start", 1.2),
            ("reward_scale", 0),
            ("huber_delta", 0),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            DQNConfig(**{field: value})

    def test_epsilon_ordering_enforced(self):
        with pytest.raises(ValueError):
            DQNConfig(epsilon_start=0.1, epsilon_end=0.5)

    def test_with_overrides(self):
        config = DQNConfig().with_overrides(learning_rate=1e-4)
        assert config.learning_rate == 1e-4


class TestAgentBasics:
    def test_replay_type_follows_config(self):
        agent = DDDQNAgent(4, _config(prioritized=True))
        assert isinstance(agent.replay, PrioritizedReplayBuffer)
        agent = DDDQNAgent(4, _config(prioritized=False))
        assert isinstance(agent.replay, UniformReplayBuffer)

    def test_epsilon_anneals(self):
        agent = DDDQNAgent(4, _config(epsilon_start=1.0, epsilon_end=0.1, epsilon_decay_steps=10))
        assert agent.epsilon == pytest.approx(1.0)
        agent.env_steps = 5
        assert agent.epsilon == pytest.approx(0.55)
        agent.env_steps = 100
        assert agent.epsilon == pytest.approx(0.1)

    def test_act_greedy_matches_argmax(self):
        agent = DDDQNAgent(4, _config())
        state = np.ones(4)
        action = agent.act(state, explore=False)
        assert action == int(np.argmax(agent.q_values(state)))

    def test_act_explore_covers_both_actions(self):
        agent = DDDQNAgent(4, _config(epsilon_start=1.0, epsilon_end=1.0))
        actions = {agent.act(np.zeros(4), explore=True) for _ in range(50)}
        assert actions == {0, 1}

    def test_state_dict_roundtrip(self):
        agent = DDDQNAgent(4, _config(seed=1))
        other = DDDQNAgent(4, _config(seed=2))
        other.load_state_dict(agent.state_dict())
        state = np.ones(4)
        assert np.allclose(agent.q_values(state), other.q_values(state))

    def test_from_state_dict_reconstructs_the_policy_exactly(self, rng):
        # The executor round-trip of the per-trial RL search: a trained
        # agent's checkpoint crosses a process boundary and comes back as a
        # greedy-evaluation agent with bit-identical Q-values.
        agent = DDDQNAgent(4, _config(train_frequency=1))
        for _ in range(20):
            agent.observe(_transition(rng))
        restored = DDDQNAgent.from_state_dict(4, agent.state_dict())
        for _ in range(5):
            state = rng.normal(size=4)
            assert np.array_equal(agent.q_values(state), restored.q_values(state))
        # Hidden layout is inferred from the checkpoint, not the config.
        assert tuple(restored.config.hidden_sizes) == (16, 8)
        # Cheap reconstruction: no full-size empty replay buffer, and a
        # zeroed training clock (nothing trained on this instance).
        assert restored.config.buffer_capacity == 1
        assert restored.training_cost_node_hours == 0.0

    def test_from_state_dict_rejects_mismatched_state_dim(self):
        agent = DDDQNAgent(4, _config())
        with pytest.raises(ValueError, match="dimensional"):
            DDDQNAgent.from_state_dict(7, agent.state_dict())


class TestLearning:
    def test_observe_trains_after_warmup(self, rng):
        agent = DDDQNAgent(4, _config(train_frequency=1))
        stats = None
        for _ in range(20):
            stats = agent.observe(_transition(rng)) or stats
        assert agent.train_steps > 0
        assert stats is not None and np.isfinite(stats.loss)

    def test_reward_scaling_applied_to_stored_transitions(self, rng):
        agent = DDDQNAgent(4, _config(reward_scale=10.0, warmup_transitions=100))
        agent.observe(
            Transition(state=np.zeros(4), action=0, reward=-50.0, next_state=None, done=True)
        )
        stored = agent.replay._storage[0]
        assert stored.reward == pytest.approx(-5.0)

    def test_target_network_syncs(self, rng):
        agent = DDDQNAgent(4, _config(train_frequency=1, target_sync_frequency=5))
        for _ in range(40):
            agent.observe(_transition(rng))
        state = np.ones(4)
        # After a sync the target equals the online network for several steps;
        # just check the sync happened at least once and values are finite.
        assert agent.train_steps >= 5
        assert np.all(np.isfinite(agent.target.forward(state)))

    def test_learns_simple_contrast(self):
        # One state: action 1 always yields 0, action 0 always yields -10.
        # After training, the agent must prefer action 1.
        config = _config(
            train_frequency=1,
            gamma=0.9,
            learning_rate=5e-3,
            epsilon_decay_steps=10,
            target_sync_frequency=20,
        )
        agent = DDDQNAgent(3, config)
        state = np.array([1.0, 0.5, 0.2])
        rng = np.random.default_rng(0)
        for _ in range(300):
            action = int(rng.integers(2))
            reward = 0.0 if action == 1 else -10.0
            agent.observe(
                Transition(state=state, action=action, reward=reward, next_state=None, done=True)
            )
        q = agent.q_values(state)
        assert q[1] > q[0]
        assert agent.act(state, explore=False) == 1

    def test_training_cost_accumulates(self, rng):
        agent = DDDQNAgent(4, _config(train_frequency=1))
        for _ in range(30):
            agent.observe(_transition(rng))
        assert agent.training_cost_node_hours > 0.0

    def test_double_disabled_still_trains(self, rng):
        agent = DDDQNAgent(4, _config(double=False, dueling=False, train_frequency=1))
        for _ in range(30):
            agent.observe(_transition(rng))
        assert agent.train_steps > 0
