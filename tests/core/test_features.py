"""Tests for the Table 1 feature extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.features import (
    FEATURE_INDEX,
    FEATURE_NAMES,
    N_FEATURES,
    NodeFeatureTrack,
    StateNormalizer,
    build_feature_tracks,
    extract_node_features,
    feature_variation,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind, EventRecord
from repro.utils.timeutils import HOUR, MINUTE


def _build_log(records):
    return ErrorLog.from_records(records)


class TestFeatureVariation:
    def test_zero_when_no_history(self):
        assert feature_variation([], [], now=100.0, value_now=5.0, delta=60.0) == 0.0

    def test_zero_when_past_value_zero(self):
        assert feature_variation([0.0], [0.0], now=100.0, value_now=5.0, delta=60.0) == 0.0

    def test_ratio_computed(self):
        # Value was 2 at t=0, is 6 now at t=100, delta=60 -> reference t=40 -> 2.
        assert feature_variation([0.0], [2.0], 100.0, 6.0, 60.0) == pytest.approx(3.0)

    def test_uses_latest_value_before_reference(self):
        times = [0.0, 30.0, 80.0]
        values = [1.0, 4.0, 9.0]
        # reference = 100 - 60 = 40 -> latest value at/before 40 is 4.
        assert feature_variation(times, values, 100.0, 8.0, 60.0) == pytest.approx(2.0)


class TestExtractNodeFeatures:
    def test_feature_names_and_count(self):
        assert len(FEATURE_NAMES) == N_FEATURES == 14

    def test_ce_counting(self):
        log = _build_log(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=3,
                            rank=0, bank=0, row=1, col=1),
                EventRecord(time=2 * MINUTE, node=0, dimm=0, kind=EventKind.CE, ce_count=2,
                            rank=0, bank=0, row=2, col=1),
            ]
        )
        track = extract_node_features(log, 0)
        assert len(track) == 2
        assert track.features[0, FEATURE_INDEX["ces_since_last_event"]] == 3
        assert track.features[1, FEATURE_INDEX["ces_since_last_event"]] == 2
        assert track.features[1, FEATURE_INDEX["ces_total"]] == 5

    def test_distinct_location_counting(self):
        log = _build_log(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1,
                            rank=0, bank=0, row=1, col=1),
                EventRecord(time=5 * MINUTE, node=0, dimm=0, kind=EventKind.CE, ce_count=1,
                            rank=0, bank=0, row=1, col=2),
                EventRecord(time=10 * MINUTE, node=0, dimm=1, kind=EventKind.CE, ce_count=1,
                            rank=1, bank=2, row=3, col=4),
            ]
        )
        track = extract_node_features(log, 0)
        last = track.features[-1]
        assert last[FEATURE_INDEX["dimms_with_ce"]] == 2
        assert last[FEATURE_INDEX["ranks_with_ce"]] == 2
        assert last[FEATURE_INDEX["rows_with_ce"]] == 2
        assert last[FEATURE_INDEX["cols_with_ce"]] == 3

    def test_warning_and_boot_counting(self):
        log = _build_log(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.UE_WARNING),
                EventRecord(time=10 * MINUTE, node=0, dimm=-1, kind=EventKind.BOOT),
                EventRecord(time=20 * MINUTE, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
            ]
        )
        track = extract_node_features(log, 0)
        last = track.features[-1]
        assert last[FEATURE_INDEX["ue_warnings_total"]] == 1
        assert last[FEATURE_INDEX["boots_total"]] == 1
        assert last[FEATURE_INDEX["time_since_boot"]] == pytest.approx(10 * MINUTE)

    def test_time_since_boot_before_any_boot(self):
        log = _build_log(
            [
                EventRecord(time=100.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=100.0 + HOUR, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
            ]
        )
        track = extract_node_features(log, 0)
        assert track.features[1, FEATURE_INDEX["time_since_boot"]] == pytest.approx(HOUR)

    def test_variation_features(self):
        log = _build_log(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=10),
                EventRecord(time=90 * MINUTE, node=0, dimm=0, kind=EventKind.CE, ce_count=10),
                EventRecord(time=2 * HOUR, node=0, dimm=0, kind=EventKind.CE, ce_count=20),
            ]
        )
        track = extract_node_features(log, 0)
        last = track.features[-1]
        # One hour before the last event only the first record existed (10 CEs);
        # now the total is 40 -> ratio 4.  One minute before, total was 20 -> 2.
        assert last[FEATURE_INDEX["ces_total_var_1hour"]] == pytest.approx(4.0)
        assert last[FEATURE_INDEX["ces_total_var_1min"]] == pytest.approx(2.0)

    def test_ue_marks_terminal(self):
        log = _build_log(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=HOUR, node=0, dimm=0, kind=EventKind.UE),
            ]
        )
        track = extract_node_features(log, 0)
        assert track.is_ue.tolist() == [False, True]
        assert track.n_decision_points == 1
        assert track.ue_times.tolist() == [HOUR]

    def test_slice_time(self):
        log = _build_log(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=HOUR, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=2 * HOUR, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
            ]
        )
        track = extract_node_features(log, 0)
        window = track.slice_time(HOUR - 1, 2 * HOUR)
        assert len(window) == 1
        assert window.features.shape == (1, N_FEATURES)

    def test_track_validation(self):
        with pytest.raises(ValueError):
            NodeFeatureTrack(
                node=0,
                times=np.zeros(2),
                features=np.zeros((2, N_FEATURES + 1)),
                is_ue=np.zeros(2, dtype=bool),
            )
        with pytest.raises(ValueError):
            NodeFeatureTrack(
                node=0,
                times=np.zeros(2),
                features=np.zeros((1, N_FEATURES)),
                is_ue=np.zeros(2, dtype=bool),
            )


class TestBuildFeatureTracks:
    def test_covers_all_nodes(self, reduced_error_log, feature_tracks):
        assert set(feature_tracks) == set(reduced_error_log.nodes.tolist())

    def test_features_are_finite_and_non_negative(self, feature_tracks):
        for track in feature_tracks.values():
            assert np.all(np.isfinite(track.features))
            assert np.all(track.features >= 0.0)

    def test_cumulative_features_monotone(self, feature_tracks):
        for track in feature_tracks.values():
            ces = track.features[:, FEATURE_INDEX["ces_total"]]
            boots = track.features[:, FEATURE_INDEX["boots_total"]]
            assert np.all(np.diff(ces) >= 0)
            assert np.all(np.diff(boots) >= 0)

    def test_ue_count_matches_log(self, reduced_error_log, feature_tracks):
        total_track_ues = sum(int(t.is_ue.sum()) for t in feature_tracks.values())
        assert total_track_ues == reduced_error_log.count_ues()


class TestStateNormalizer:
    def test_state_dim(self, normalizer):
        assert normalizer.state_dim == N_FEATURES + 1

    def test_log_compression_of_counts(self, normalizer):
        features = np.zeros(N_FEATURES)
        features[FEATURE_INDEX["ces_total"]] = np.e - 1
        state = normalizer.state_vector(features, ue_cost=0.0)
        assert state[FEATURE_INDEX["ces_total"]] == pytest.approx(1.0)

    def test_ratio_features_clipped_not_logged(self):
        normalizer = StateNormalizer(ratio_clip=10.0)
        features = np.zeros(N_FEATURES)
        features[FEATURE_INDEX["ces_total_var_1hour"]] = 100.0
        state = normalizer.state_vector(features, ue_cost=0.0)
        assert state[FEATURE_INDEX["ces_total_var_1hour"]] == pytest.approx(10.0)

    def test_ue_cost_appended_and_compressed(self, normalizer):
        state = normalizer.state_vector(np.zeros(N_FEATURES), ue_cost=np.e - 1)
        assert state[-1] == pytest.approx(1.0)

    def test_wrong_feature_count_rejected(self, normalizer):
        with pytest.raises(ValueError):
            normalizer.state_vector(np.zeros(N_FEATURES - 1), ue_cost=0.0)

    def test_transform_batch(self, normalizer):
        batch = np.abs(np.random.default_rng(0).normal(size=(5, N_FEATURES + 1))) * 100
        out = normalizer.transform(batch)
        assert out.shape == batch.shape
        assert np.all(np.isfinite(out))

    def test_invalid_clip_rejected(self):
        with pytest.raises(ValueError):
            StateNormalizer(ratio_clip=0)

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e9, allow_nan=False), min_size=N_FEATURES, max_size=N_FEATURES
        ),
        st.floats(min_value=0, max_value=1e7),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_output_bounded(self, features, ue_cost):
        normalizer = StateNormalizer()
        state = normalizer.state_vector(np.array(features), ue_cost)
        assert np.all(np.isfinite(state))
        assert np.all(state >= 0.0)
        assert np.all(state <= max(np.log1p(1e9), 50.0) + 1)
