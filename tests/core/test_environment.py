"""Tests for the mitigation replay environment."""

import numpy as np
import pytest

from repro.core.environment import MitigationEnv
from repro.core.features import NodeFeatureTrack, N_FEATURES, StateNormalizer
from repro.core.mdp import Action
from repro.utils.timeutils import HOUR
from repro.workload.job import JobLog, JobRecord
from repro.workload.sampling import JobSequenceSampler


def _track(node, times, is_ue):
    times = np.asarray(times, dtype=float)
    return NodeFeatureTrack(
        node=node,
        times=times,
        features=np.tile(np.arange(N_FEATURES, dtype=float), (len(times), 1)),
        is_ue=np.asarray(is_ue, dtype=bool),
    )


@pytest.fixture()
def constant_job_sampler():
    # A single job type (4 nodes, 100 hours) so costs are easy to predict.
    log = JobLog.from_records(
        [JobRecord(submit=0, start=0, end=100 * HOUR, n_nodes=4, job_id=0)]
    )
    return JobSequenceSampler(log, seed=0)


@pytest.fixture()
def simple_env(constant_job_sampler):
    tracks = {
        0: _track(0, [HOUR, 2 * HOUR, 3 * HOUR, 4 * HOUR], [False, False, False, True]),
        1: _track(1, [HOUR, 5 * HOUR], [False, False]),
    }
    return MitigationEnv(
        tracks,
        constant_job_sampler,
        mitigation_cost=2 / 60.0,
        restartable=True,
        t_start=0.0,
        t_end=6 * HOUR,
        seed=3,
    )


class TestReset:
    def test_reset_returns_state_of_right_dim(self, simple_env):
        state = simple_env.reset()
        assert state.shape == (simple_env.state_dim,)

    def test_reset_specific_node(self, simple_env):
        state = simple_env.reset(node=0)
        assert state is not None

    def test_reset_unknown_node_rejected(self, simple_env):
        with pytest.raises(ValueError):
            simple_env.reset(node=99)

    def test_requires_decision_points(self, constant_job_sampler):
        tracks = {0: _track(0, [HOUR], [True])}
        with pytest.raises(ValueError):
            MitigationEnv(tracks, constant_job_sampler, mitigation_cost=0.033)


class TestStep:
    def test_episode_terminates_on_ue_with_cost(self, simple_env):
        simple_env.reset(node=0)
        total_reward = 0.0
        done = False
        steps = 0
        while not done:
            _, reward, done, info = simple_env.step(Action.NO_MITIGATION)
            total_reward += reward
            steps += 1
        assert steps == 3
        assert info["ue_occurred"]
        # The job started before the first event; with no mitigation the UE
        # at t=4h costs 4 nodes x (4h - job_start)/1h >= 16 node-hours.
        assert info["ue_cost"] >= 16.0 - 1e-6
        assert total_reward == pytest.approx(-info["ue_cost"])

    def test_mitigation_reduces_ue_cost(self, simple_env):
        # Mitigate at every step: the UE cost is only the time since the last
        # event (1 hour on a 4-node job) plus the mitigation costs.
        simple_env.reset(node=0)
        done = False
        total_mitigations = 0
        while not done:
            _, reward, done, info = simple_env.step(Action.MITIGATE)
            total_mitigations += 1
        assert info["ue_cost"] == pytest.approx(4.0, rel=1e-6)
        summary = simple_env.episode_summary()
        assert summary.n_mitigations == total_mitigations == 3
        assert summary.mitigation_cost == pytest.approx(3 * 2 / 60.0)

    def test_episode_without_ue_ends_cleanly(self, simple_env):
        simple_env.reset(node=1)
        _, reward, done, info = simple_env.step(Action.NO_MITIGATION)
        assert not done
        _, reward, done, info = simple_env.step(Action.NO_MITIGATION)
        assert done
        assert not info["ue_occurred"]
        assert reward == 0.0

    def test_non_restartable_mitigation_does_not_reset_cost(self, constant_job_sampler):
        tracks = {0: _track(0, [HOUR, 2 * HOUR, 3 * HOUR], [False, False, True])}
        env = MitigationEnv(
            tracks,
            constant_job_sampler,
            mitigation_cost=2 / 60.0,
            restartable=False,
            t_start=0.0,
            t_end=4 * HOUR,
            seed=1,
        )
        env.reset(node=0)
        env.step(Action.MITIGATE)
        _, reward, done, info = env.step(Action.MITIGATE)
        assert done
        # Despite mitigating, the full cost since job start is lost.
        assert info["ue_cost"] >= 4 * 3.0 - 1e-6

    def test_invalid_action_rejected(self, simple_env):
        simple_env.reset(node=0)
        with pytest.raises(ValueError):
            simple_env.step(5)

    def test_step_before_reset_raises(self, simple_env):
        env = simple_env
        env._episode = None
        with pytest.raises(RuntimeError):
            env.step(0)


class TestRealisticEnvironment:
    def test_runs_on_generated_data(self, feature_tracks, job_sampler):
        env = MitigationEnv(
            feature_tracks,
            job_sampler,
            mitigation_cost=2 / 60.0,
            seed=9,
        )
        for _ in range(5):
            state = env.reset()
            done = False
            steps = 0
            while not done and steps < 500:
                state, reward, done, info = env.step(steps % 2)
                steps += 1
                assert reward <= 0.0
            summary = env.episode_summary()
            assert summary.n_steps == steps

    def test_state_is_normalised(self, feature_tracks, job_sampler, normalizer):
        env = MitigationEnv(
            feature_tracks, job_sampler, mitigation_cost=0.033, normalizer=normalizer, seed=1
        )
        state = env.reset()
        assert np.all(np.isfinite(state))
        assert state.shape == (normalizer.state_dim,)
