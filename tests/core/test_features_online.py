"""Equivalence suite: OnlineFeatureState vs the batch extractor.

The serving daemon consumes events one at a time, so ``OnlineFeatureState``
re-implements the merge + feature fold incrementally.  Its output must be
*bit-identical* to ``extract_node_features`` over every prefix of the same
event stream — any drift would break the serve-vs-offline decision
equivalence that the whole online path is built on.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.features import (
    N_FEATURES,
    OnlineFeatureState,
    extract_node_features,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind


def _log_from_columns(**columns):
    length = len(columns["time"])
    defaults = dict(
        node=np.zeros(length, dtype=np.int64),
        dimm=np.zeros(length, dtype=np.int64),
        ce_count=np.zeros(length, dtype=np.int64),
        rank=np.full(length, -1, dtype=np.int32),
        bank=np.full(length, -1, dtype=np.int32),
        row=np.full(length, -1, dtype=np.int64),
        col=np.full(length, -1, dtype=np.int64),
        scrubber=np.zeros(length, dtype=bool),
        manufacturer=np.zeros(length, dtype=np.int8),
    )
    defaults.update(columns)
    return ErrorLog(**defaults)


def _edge_log():
    """Boots, warnings, missing coordinates, merge-window bursts, UEs."""
    kind = np.array(
        [
            EventKind.BOOT,
            EventKind.CE,
            EventKind.CE,
            EventKind.CE,
            EventKind.UE_WARNING,
            EventKind.CE,
            EventKind.UE,
            EventKind.CE,
            EventKind.BOOT,
            EventKind.CE,
            EventKind.OVERTEMP,
            EventKind.CE,
        ],
        dtype=np.int8,
    )
    return _log_from_columns(
        time=np.array(
            [
                0.0, 30.0, 45.0, 3600.0, 3620.0, 3640.0, 7200.0, 7260.0,
                9000.0, 9030.0, 9031.5, 9031.500001,
            ]
        ),
        kind=kind,
        ce_count=np.array([0, 3, 2, 1, 0, 4, 0, 2, 0, 7, 0, 5], dtype=np.int64),
        dimm=np.array([0, 1, 1, 2, 0, 1, 0, 2, 0, 1, 0, 2], dtype=np.int64),
        rank=np.array([-1, 0, 0, 1, -1, -1, -1, 1, -1, 0, -1, 1], dtype=np.int32),
        bank=np.array([-1, 2, -1, 0, -1, 2, -1, 0, -1, 2, -1, 0], dtype=np.int32),
        row=np.array([-1, 7, -1, 5, -1, -1, -1, 5, -1, 8, -1, 5], dtype=np.int64),
        col=np.array([-1, -1, 3, 1, -1, 9, -1, 1, -1, -1, -1, 1], dtype=np.int64),
    )


def _steps_arrays(steps):
    times = np.array([s.time for s in steps], dtype=np.float64)
    is_ue = np.array([s.is_ue for s in steps], dtype=bool)
    features = (
        np.stack([s.features for s in steps])
        if steps
        else np.zeros((0, N_FEATURES))
    )
    return times, is_ue, features


def _assert_steps_match_track(steps, track, context=""):
    times, is_ue, features = _steps_arrays(steps)
    assert np.array_equal(times, track.times), context
    assert np.array_equal(is_ue, track.is_ue), context
    assert np.array_equal(features, track.features), (
        context,
        np.argwhere(features != track.features)[:5],
    )


def _assert_prefix_equivalence(log, node, indices, merge_window=60.0):
    """Online absorb of every prefix must equal the batch extractor on it."""
    state = OnlineFeatureState(node, merge_window)
    emitted = []
    for k in range(1, len(indices) + 1):
        idx = int(indices[k - 1])
        emitted.extend(
            state.absorb_event(
                float(log.time[idx]),
                int(log.kind[idx]),
                ce_count=int(log.ce_count[idx]),
                dimm=int(log.dimm[idx]),
                rank=int(log.rank[idx]),
                bank=int(log.bank[idx]),
                row=int(log.row[idx]),
                col=int(log.col[idx]),
            )
        )
        snapshot = copy.deepcopy(state)
        rows = emitted + snapshot.flush()
        reference = extract_node_features(log, node, indices[:k], merge_window)
        _assert_steps_match_track(rows, reference, context=(node, k))


def test_edge_log_prefixes_match_batch_extractor():
    log = _edge_log()
    for node, indices in log.node_slices().items():
        _assert_prefix_equivalence(log, node, indices)


def test_generated_log_prefixes_match_batch_extractor(reduced_error_log):
    log = reduced_error_log
    checked = 0
    for node, indices in log.node_slices().items():
        if len(indices) < 4:
            continue
        _assert_prefix_equivalence(log, node, indices[:120])
        checked += 1
        if checked == 5:
            break
    assert checked == 5


def test_absorb_log_batches_equal_per_event_absorb(reduced_error_log):
    log = reduced_error_log
    node, indices = max(log.node_slices().items(), key=lambda kv: len(kv[1]))
    batched = OnlineFeatureState(node)
    # Split the node's slice into uneven batches: absorbing batch-at-a-time
    # must behave exactly like event-at-a-time.
    cuts = [0, 1, 7, len(indices) // 2, len(indices)]
    steps = []
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        steps.extend(batched.absorb_log(log, indices[lo:hi]))
    steps.extend(batched.flush())
    _assert_steps_match_track(steps, extract_node_features(log, node, indices))


def test_advance_to_does_not_change_the_step_sequence(reduced_error_log):
    """Clock-driven finalisation emits the same steps, just earlier.

    Replays the log globally in time order, absorbing each event into its
    node's state and then advancing *every* node to the global stream clock
    — exactly what the serving loop does — and compares against per-node
    absorb + flush with no clock at all.
    """
    nodes = sorted(reduced_error_log.node_slices(), key=int)[:8]
    log = reduced_error_log.filter_nodes(nodes)
    clocked = {node: OnlineFeatureState(node) for node in nodes}
    clocked_steps = {node: [] for node in nodes}
    for idx in range(len(log)):
        node = int(log.node[idx])
        t = float(log.time[idx])
        clocked_steps[node].extend(
            clocked[node].absorb_event(
                t,
                int(log.kind[idx]),
                ce_count=int(log.ce_count[idx]),
                dimm=int(log.dimm[idx]),
                rank=int(log.rank[idx]),
                bank=int(log.bank[idx]),
                row=int(log.row[idx]),
                col=int(log.col[idx]),
            )
        )
        # The global clock never exceeds the next event of any node, so
        # advancing every state to it is always safe.
        for other in nodes:
            clocked_steps[other].extend(clocked[other].advance_to(t))
    for node, indices in log.node_slices().items():
        steps = clocked_steps[node] + clocked[node].flush()
        _assert_steps_match_track(
            steps, extract_node_features(log, node, indices), context=node
        )


def test_ue_closes_its_group_immediately():
    state = OnlineFeatureState(node=0)
    assert state.absorb_event(10.0, int(EventKind.CE), ce_count=2, dimm=1) == []
    steps = state.absorb_event(20.0, int(EventKind.UE))
    assert len(steps) == 1
    assert steps[0].is_ue and steps[0].time == 20.0
    assert not state.has_open_group
    assert state.n_steps == 1


def test_overtemp_counts_as_ue():
    state = OnlineFeatureState(node=0)
    steps = state.absorb_event(5.0, int(EventKind.OVERTEMP))
    assert len(steps) == 1 and steps[0].is_ue


def test_open_group_deadline_and_advance_to():
    state = OnlineFeatureState(node=0, merge_window_seconds=60.0)
    assert state.open_group_deadline is None
    state.absorb_event(100.0, int(EventKind.CE), ce_count=1, dimm=0)
    assert state.open_group_deadline == 160.0
    assert state.advance_to(159.999) == []
    steps = state.advance_to(160.0)  # boundary: times[i] - start < window fails
    assert len(steps) == 1
    assert steps[0].time == 100.0 and not steps[0].is_ue
    assert state.open_group_deadline is None


def test_out_of_order_events_rejected():
    state = OnlineFeatureState(node=0)
    state.absorb_event(100.0, int(EventKind.CE), ce_count=1)
    with pytest.raises(ValueError, match="time order"):
        state.absorb_event(99.0, int(EventKind.CE), ce_count=1)


def test_invalid_merge_window_rejected():
    with pytest.raises(ValueError, match="merge_window_seconds"):
        OnlineFeatureState(node=0, merge_window_seconds=0.0)
