"""Tests for the replay memories (sum tree, uniform, prioritized)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mdp import Transition
from repro.core.replay import PrioritizedReplayBuffer, SumTree, UniformReplayBuffer


def _transition(value=0.0, done=False, action=0):
    state = np.full(4, value)
    return Transition(
        state=state,
        action=action,
        reward=-value,
        next_state=None if done else state + 1,
        done=done,
    )


class TestSumTree:
    def test_total_tracks_updates(self):
        tree = SumTree(8)
        tree.update(0, 1.0)
        tree.update(3, 2.0)
        assert tree.total == pytest.approx(3.0)
        tree.update(0, 0.5)
        assert tree.total == pytest.approx(2.5)

    def test_get_returns_stored_priority(self):
        tree = SumTree(4)
        tree.update(2, 1.25)
        assert tree.get(2) == pytest.approx(1.25)

    def test_sample_respects_prefix_sums(self):
        tree = SumTree(4)
        tree.update(0, 1.0)
        tree.update(1, 2.0)
        tree.update(2, 3.0)
        idx, priority = tree.sample(0.5)
        assert idx == 0
        idx, priority = tree.sample(2.5)
        assert idx == 1
        idx, priority = tree.sample(5.5)
        assert idx == 2

    def test_sample_empty_tree_raises(self):
        with pytest.raises(ValueError):
            SumTree(4).sample(0.0)

    def test_update_out_of_range(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.update(4, 1.0)

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            SumTree(4).update(0, -1.0)

    def test_non_power_of_two_capacity(self):
        tree = SumTree(5)
        for i in range(5):
            tree.update(i, float(i + 1))
        assert tree.total == pytest.approx(15.0)
        # Sampling remains proportional even when the leaf layer is ragged:
        # the returned leaf always carries the priority that was stored in it.
        idx, priority = tree.sample(14.9)
        assert 0 <= idx < 5
        assert priority == pytest.approx(float(idx + 1))

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_property_sampling_proportional(self, priorities):
        tree = SumTree(len(priorities))
        for i, p in enumerate(priorities):
            tree.update(i, p)
        assert tree.total == pytest.approx(sum(priorities), rel=1e-9)
        rng = np.random.default_rng(0)
        for _ in range(20):
            idx, priority = tree.sample(rng.uniform(0, tree.total))
            assert 0 <= idx < len(priorities)
            assert priority == pytest.approx(priorities[idx], rel=1e-9)


class TestUniformReplayBuffer:
    def test_push_and_len(self):
        buffer = UniformReplayBuffer(4)
        for i in range(3):
            buffer.push(_transition(i))
        assert len(buffer) == 3

    def test_capacity_eviction(self):
        buffer = UniformReplayBuffer(4)
        for i in range(10):
            buffer.push(_transition(i))
        assert len(buffer) == 4

    def test_sample_shapes(self):
        buffer = UniformReplayBuffer(16, seed=0)
        for i in range(8):
            buffer.push(_transition(i, done=(i % 3 == 0), action=i % 2))
        batch = buffer.sample(5)
        assert batch.states.shape == (5, 4)
        assert batch.next_states.shape == (5, 4)
        assert batch.actions.shape == (5,)
        assert np.all(batch.weights == 1.0)

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            UniformReplayBuffer(4).sample(1)


class TestPrioritizedReplayBuffer:
    def _filled(self, n=32, capacity=64):
        buffer = PrioritizedReplayBuffer(capacity, seed=1)
        for i in range(n):
            buffer.push(_transition(i, done=(i % 7 == 0)))
        return buffer

    def test_sample_shapes_and_weights(self):
        buffer = self._filled()
        batch = buffer.sample(8)
        assert batch.states.shape == (8, 4)
        assert batch.weights.shape == (8,)
        assert np.all(batch.weights > 0) and np.all(batch.weights <= 1.0 + 1e-9)

    def test_update_priorities_biases_sampling(self):
        buffer = PrioritizedReplayBuffer(64, alpha=1.0, seed=2)
        for i in range(16):
            buffer.push(_transition(i))
        # Give index 3 an enormous priority.
        buffer.update_priorities(np.arange(16), np.full(16, 1e-3))
        buffer.update_priorities(np.array([3]), np.array([1000.0]))
        counts = np.zeros(16)
        for _ in range(40):
            batch = buffer.sample(8)
            for idx in batch.indices:
                counts[idx] += 1
        assert counts[3] == counts.max()
        assert counts[3] > 40  # sampled in nearly every batch

    def test_beta_annealing(self):
        buffer = PrioritizedReplayBuffer(8, beta0=0.4)
        buffer.anneal(0.5)
        assert buffer.beta == pytest.approx(0.7)
        buffer.anneal(2.0)
        assert buffer.beta == pytest.approx(1.0)

    def test_capacity_eviction(self):
        buffer = self._filled(n=200, capacity=64)
        assert len(buffer) == 64

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(0)
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4, alpha=1.5)
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4, epsilon=0)

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            PrioritizedReplayBuffer(4).sample(1)

    def test_new_transitions_get_max_priority(self):
        buffer = PrioritizedReplayBuffer(16, alpha=1.0, seed=3)
        buffer.push(_transition(0))
        buffer.update_priorities(np.array([0]), np.array([50.0]))
        buffer.push(_transition(1))
        # The new transition should have priority comparable to the maximum.
        assert buffer._tree.get(1) >= buffer._tree.get(0) - 1e-9
