"""Tests for the tabular Q-learning ablation agent."""

import numpy as np
import pytest

from repro.core.features import FEATURE_INDEX, N_FEATURES, StateNormalizer
from repro.core.mdp import Transition
from repro.core.qlearning import TabularQAgent, TabularQConfig


def _state(ue_cost=0.0, ces_total=0.0, warnings=0.0):
    features = np.zeros(N_FEATURES)
    features[FEATURE_INDEX["ces_total"]] = ces_total
    features[FEATURE_INDEX["ue_warnings_total"]] = warnings
    return StateNormalizer().state_vector(features, ue_cost)


class TestTabularQConfig:
    def test_defaults_valid(self):
        TabularQConfig()

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            TabularQConfig(learning_rate=0)
        with pytest.raises(ValueError):
            TabularQConfig(gamma=1.5)


class TestTabularQAgent:
    def test_discretisation_distinguishes_cost_ranges(self):
        agent = TabularQAgent(N_FEATURES + 1)
        low = agent._discretise(_state(ue_cost=1.0))
        high = agent._discretise(_state(ue_cost=50_000.0))
        assert low != high

    def test_discretisation_distinguishes_warning_states(self):
        agent = TabularQAgent(N_FEATURES + 1)
        a = agent._discretise(_state(warnings=0))
        b = agent._discretise(_state(warnings=3))
        assert a != b

    def test_act_greedy_uses_table(self):
        agent = TabularQAgent(N_FEATURES + 1)
        state = _state(ue_cost=10.0)
        key = agent._discretise(state)
        agent._values(key)[1] = 5.0
        assert agent.act(state, explore=False) == 1

    def test_observe_moves_q_towards_reward(self):
        agent = TabularQAgent(N_FEATURES + 1, TabularQConfig(learning_rate=0.5, reward_scale=1.0))
        state = _state(ue_cost=100.0)
        for _ in range(50):
            agent.observe(
                Transition(state=state, action=0, reward=-40.0, next_state=None, done=True)
            )
            agent.observe(
                Transition(state=state, action=1, reward=-0.03, next_state=None, done=True)
            )
        q = agent.q_values(state)
        assert q[1] > q[0]
        assert q[0] == pytest.approx(-40.0, rel=0.1)

    def test_bootstrap_from_next_state(self):
        config = TabularQConfig(learning_rate=1.0, gamma=0.5, reward_scale=1.0)
        agent = TabularQAgent(N_FEATURES + 1, config)
        s1 = _state(ue_cost=1.0)
        s2 = _state(ue_cost=50_000.0)
        # Give the successor state a known value.
        agent._values(agent._discretise(s2))[:] = [-10.0, -2.0]
        agent.observe(Transition(state=s1, action=0, reward=-1.0, next_state=s2, done=False))
        assert agent.q_values(s1)[0] == pytest.approx(-1.0 + 0.5 * -2.0)

    def test_epsilon_anneals(self):
        agent = TabularQAgent(N_FEATURES + 1, TabularQConfig(epsilon_decay_steps=10))
        assert agent.epsilon == pytest.approx(1.0)
        agent.env_steps = 10
        assert agent.epsilon == pytest.approx(0.05)

    def test_visited_state_count_grows(self):
        agent = TabularQAgent(N_FEATURES + 1)
        agent.q_values(_state(ue_cost=1.0))
        agent.q_values(_state(ue_cost=1e5))
        assert agent.n_visited_states >= 2

    def test_training_cost_is_free(self):
        assert TabularQAgent(N_FEATURES + 1).training_cost_node_hours == 0.0
