"""Tests for the MDP formulation (actions, reward, transitions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.mdp import N_ACTIONS, Action, EpisodeSummary, Transition, compute_reward


class TestAction:
    def test_two_actions(self):
        assert N_ACTIONS == 2
        assert int(Action.NO_MITIGATION) == 0
        assert int(Action.MITIGATE) == 1


class TestComputeReward:
    def test_no_action_no_ue_is_free(self):
        assert compute_reward(0, 0.033, False, 0.0) == 0.0

    def test_mitigation_costs_its_price(self):
        assert compute_reward(1, 0.033, False, 0.0) == pytest.approx(-0.033)

    def test_ue_costs_added(self):
        assert compute_reward(0, 0.033, True, 120.0) == pytest.approx(-120.0)

    def test_mitigation_and_ue(self):
        assert compute_reward(1, 0.033, True, 120.0) == pytest.approx(-120.033)

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            compute_reward(2, 0.033, False, 0.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            compute_reward(0, -1.0, False, 0.0)
        with pytest.raises(ValueError):
            compute_reward(0, 1.0, False, -5.0)

    @given(
        st.sampled_from([0, 1]),
        st.floats(min_value=0, max_value=10),
        st.booleans(),
        st.floats(min_value=0, max_value=1e5),
    )
    def test_property_reward_never_positive(self, action, mit_cost, ue, ue_cost):
        assert compute_reward(action, mit_cost, ue, ue_cost) <= 0.0


class TestTransition:
    def test_terminal_transition_drops_next_state(self):
        transition = Transition(
            state=np.zeros(3), action=1, reward=-1.0, next_state=np.ones(3), done=True
        )
        assert transition.next_state is None

    def test_non_terminal_requires_next_state(self):
        with pytest.raises(ValueError):
            Transition(state=np.zeros(3), action=0, reward=0.0, next_state=None, done=False)

    def test_invalid_action(self):
        with pytest.raises(ValueError):
            Transition(state=np.zeros(3), action=7, reward=0.0, next_state=np.zeros(3), done=False)


class TestEpisodeSummary:
    def test_fields(self):
        summary = EpisodeSummary(
            node=3, n_steps=10, n_mitigations=2, ue_occurred=True,
            total_reward=-5.0, mitigation_cost=0.066, ue_cost=4.9,
        )
        assert summary.node == 3
        assert summary.ue_occurred
