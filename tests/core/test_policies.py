"""Tests for the policy interface and the RL policy wrapper."""

import numpy as np
import pytest

from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.features import N_FEATURES, StateNormalizer
from repro.core.policies import CallablePolicy, DecisionContext, MitigationPolicy, RLPolicy


def _context(ue_cost=1.0, **kwargs):
    defaults = dict(
        time=100.0,
        node=0,
        features=np.zeros(N_FEATURES),
        ue_cost=ue_cost,
    )
    defaults.update(kwargs)
    return DecisionContext(**defaults)


class TestDecisionContext:
    def test_defaults(self):
        context = _context()
        assert context.event_index == -1
        assert context.is_last_event_before_ue is False


class TestCallablePolicy:
    def test_wraps_function(self):
        policy = CallablePolicy(lambda ctx: ctx.ue_cost > 10, name="threshold")
        assert policy.name == "threshold"
        assert policy.decide(_context(ue_cost=20)) is True
        assert policy.decide(_context(ue_cost=5)) is False

    def test_default_training_cost_zero(self):
        policy = CallablePolicy(lambda ctx: False)
        assert policy.training_cost_node_hours == 0.0

    def test_prepare_trace_is_noop(self):
        policy = CallablePolicy(lambda ctx: False)
        policy.prepare_trace(np.zeros((3, N_FEATURES)))
        policy.reset()


class TestRLPolicy:
    @pytest.fixture()
    def agent(self):
        return DDDQNAgent(
            N_FEATURES + 1,
            DQNConfig(hidden_sizes=(8,), warmup_transitions=4, batch_size=2, seed=0),
        )

    def test_decide_matches_greedy_action(self, agent):
        normalizer = StateNormalizer()
        policy = RLPolicy(agent, normalizer)
        context = _context(ue_cost=500.0)
        state = normalizer.state_vector(context.features, context.ue_cost)
        expected = agent.act(state, explore=False) == 1
        assert policy.decide(context) == expected

    def test_training_cost_includes_agent_and_extra(self, agent):
        agent.training_wallclock_seconds = 3600.0
        policy = RLPolicy(agent, training_cost_node_hours=2.0)
        assert policy.training_cost_node_hours == pytest.approx(3.0)

    def test_name_default(self, agent):
        assert RLPolicy(agent).name == "RL"

    def test_is_mitigation_policy(self, agent):
        assert isinstance(RLPolicy(agent), MitigationPolicy)
