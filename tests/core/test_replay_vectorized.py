"""Equivalence suite: vectorized replay memory vs the scalar reference.

The vectorized :class:`SumTree` batch methods and the batched
:class:`PrioritizedReplayBuffer` sampling/priority-refresh must reproduce
the historical per-element implementations *bit for bit* — same tree
contents, same RNG stream consumption, same sampled indices and weights —
because RL training (and therefore the golden experiment fingerprints)
depends on every one of those bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdp import Transition
from repro.core.replay import PrioritizedReplayBuffer, SumTree


def _make_transitions(rng, count, state_dim=4):
    return [
        Transition(
            state=rng.normal(size=state_dim),
            action=int(rng.integers(2)),
            reward=float(rng.normal()),
            next_state=rng.normal(size=state_dim),
            done=bool(rng.random() < 0.05),
        )
        for _ in range(count)
    ]


class TestSumTreeVectorized:
    @pytest.mark.parametrize("capacity", [1, 2, 5, 16, 100])
    def test_update_many_matches_sequential_updates(self, capacity, rng):
        scalar_tree, batch_tree = SumTree(capacity), SumTree(capacity)
        for _ in range(15):
            indices = rng.integers(0, capacity, size=int(rng.integers(1, 40)))
            priorities = rng.random(indices.size) * rng.choice(
                [1e-6, 1.0, 1e5], indices.size
            )
            for index, priority in zip(indices, priorities):
                scalar_tree.update(int(index), float(priority))
            batch_tree.update_many(indices, priorities)
            assert np.array_equal(scalar_tree._tree, batch_tree._tree)

    def test_update_many_duplicate_indices_fold_in_order(self):
        scalar_tree, batch_tree = SumTree(8), SumTree(8)
        indices = np.array([3, 3, 3, 5, 3, 5])
        priorities = np.array([1.0, 0.25, 7.5, 2.0, 0.125, 0.5])
        for index, priority in zip(indices, priorities):
            scalar_tree.update(int(index), float(priority))
        batch_tree.update_many(indices, priorities)
        assert np.array_equal(scalar_tree._tree, batch_tree._tree)
        assert batch_tree.get(3) == 0.125 and batch_tree.get(5) == 0.5

    def test_update_many_validation(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.update_many(np.array([4]), np.array([1.0]))
        with pytest.raises(ValueError):
            tree.update_many(np.array([0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            tree.update_many(np.array([0, 1]), np.array([1.0]))

    def test_sample_many_matches_scalar_walks(self, rng):
        tree = SumTree(37)
        tree.update_many(rng.integers(0, 37, size=60), rng.random(60))
        values = rng.uniform(0, tree.total, size=200)
        scalar = [tree.sample(float(value)) for value in values]
        indices, priorities = tree.sample_many(values)
        assert np.array_equal(indices, np.array([s[0] for s in scalar]))
        assert np.array_equal(priorities, np.array([s[1] for s in scalar]))

    def test_sample_many_empty_tree_raises(self):
        with pytest.raises(ValueError):
            SumTree(4).sample_many(np.array([0.0]))


class TestPrioritizedReplayVectorized:
    def test_sample_and_update_interplay_is_bit_identical(self, rng):
        """200 interleaved sample/update/push rounds: identical streams."""
        transitions = _make_transitions(rng, 600)
        scalar = PrioritizedReplayBuffer(128, seed=5)
        batched = PrioritizedReplayBuffer(128, seed=5)
        for transition in transitions[:300]:
            scalar.push(transition)
        batched.push_many(transitions[:300])
        assert np.array_equal(scalar._tree._tree, batched._tree._tree)
        assert scalar._next == batched._next and scalar._size == batched._size

        extra = iter(transitions[300:])
        for round_index in range(200):
            reference = scalar._sample_scalar(32)
            batch = batched.sample(32)
            assert np.array_equal(reference.indices, batch.indices)
            assert np.array_equal(reference.weights, batch.weights)
            errors = rng.normal(size=32) * 10
            scalar._update_priorities_scalar(reference.indices, errors)
            batched.update_priorities(batch.indices, errors)
            assert np.array_equal(scalar._tree._tree, batched._tree._tree)
            assert scalar._max_priority == batched._max_priority
            if round_index % 10 == 0:
                fresh = [next(extra), next(extra)]
                for transition in fresh:
                    scalar.push(transition)
                batched.push_many(fresh)

    def test_large_batch_update_takes_the_vectorized_path(self, rng):
        """Batches >= 64 refresh through SumTree.update_many; identical."""
        transitions = _make_transitions(rng, 300)
        scalar = PrioritizedReplayBuffer(256, seed=2)
        batched = PrioritizedReplayBuffer(256, seed=2)
        for transition in transitions:
            scalar.push(transition)
        batched.push_many(transitions)
        for _ in range(20):
            indices = rng.integers(0, 256, size=128)
            errors = rng.normal(size=128) * rng.choice([1e-4, 1.0, 1e3], 128)
            scalar._update_priorities_scalar(indices, errors)
            batched.update_priorities(indices, errors)
            assert np.array_equal(scalar._tree._tree, batched._tree._tree)
            assert scalar._max_priority == batched._max_priority

    def test_push_many_wraps_like_repeated_push(self, rng):
        transitions = _make_transitions(rng, 25)
        scalar = PrioritizedReplayBuffer(8, seed=1)
        batched = PrioritizedReplayBuffer(8, seed=1)
        for transition in transitions:
            scalar.push(transition)
        batched.push_many(transitions)  # wraps the ring three times
        assert np.array_equal(scalar._tree._tree, batched._tree._tree)
        assert scalar._next == batched._next and len(scalar) == len(batched)
        assert all(
            scalar._storage[i] is batched._storage[i] for i in range(8)
        )

    def test_prewrap_unfilled_slot_fallback_matches_scalar(self, rng):
        """A draw landing on a not-yet-filled slot rewinds and replays.

        The fallback is only reachable before the buffer wraps (and needs a
        zero-priority region adjacent to live leaves), so the tree is rigged
        directly: leaf 2 gets priority while ``storage[2]`` is still None.
        The batched path must detect it, rewind the generator, and produce
        exactly the scalar loop's indices/weights — including the extra
        mid-stream ``integers`` draw the fallback consumes.
        """
        transitions = _make_transitions(rng, 2)
        scalar = PrioritizedReplayBuffer(4, seed=11)
        batched = PrioritizedReplayBuffer(4, seed=11)
        for buffer in (scalar, batched):
            for transition in transitions:
                buffer.push(transition)
            buffer._tree.update(2, 5.0)
        reference = scalar._sample_scalar(16)
        batch = batched.sample(16)
        assert np.array_equal(reference.indices, batch.indices)
        assert np.array_equal(reference.weights, batch.weights)
        # Every returned transition is a real (filled) slot.
        assert (batch.indices < 2).all()
        # And the RNG streams stayed in lockstep for the next call too.
        assert np.array_equal(
            scalar._sample_scalar(8).indices, batched.sample(8).indices
        )

    def test_zero_priority_weights_degrade_to_uniform(self):
        """All-zero sampled priorities with β > 0 must not produce NaNs."""
        weights = PrioritizedReplayBuffer._normalized_weights(
            np.zeros(8), total=1.0, size=8, beta=0.5
        )
        assert np.array_equal(weights, np.ones(8))

    def test_degenerate_overflow_weights_degrade_to_uniform(self):
        """A priority underflowing to probability 0 makes its raw weight
        infinite; the guard must keep the batch finite."""
        priorities = np.array([1.0, 0.0, 2.0])
        weights = PrioritizedReplayBuffer._normalized_weights(
            priorities, total=3.0, size=3, beta=0.4
        )
        assert np.all(np.isfinite(weights))
        assert np.array_equal(weights, np.ones(3))

    def test_normal_weights_match_historical_formula(self):
        priorities = np.array([0.5, 1.0, 0.25])
        total = 1.75
        probabilities = priorities / max(total, 1e-12)
        expected = (3 * probabilities) ** (-0.6)
        expected = expected / expected.max()
        got = PrioritizedReplayBuffer._normalized_weights(
            priorities, total=total, size=3, beta=0.6
        )
        assert np.array_equal(got, expected)
