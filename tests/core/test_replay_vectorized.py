"""Equivalence suite: vectorized replay memory vs the scalar reference.

The vectorized :class:`SumTree` batch methods and the batched
:class:`PrioritizedReplayBuffer` sampling/priority-refresh must reproduce
the historical per-element implementations *bit for bit* — same tree
contents, same RNG stream consumption, same sampled indices and weights —
because RL training (and therefore the golden experiment fingerprints)
depends on every one of those bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdp import Transition
from repro.core.replay import PrioritizedReplayBuffer, SumTree


def _make_transitions(rng, count, state_dim=4):
    return [
        Transition(
            state=rng.normal(size=state_dim),
            action=int(rng.integers(2)),
            reward=float(rng.normal()),
            next_state=rng.normal(size=state_dim),
            done=bool(rng.random() < 0.05),
        )
        for _ in range(count)
    ]


class TestSumTreeVectorized:
    @pytest.mark.parametrize("capacity", [1, 2, 5, 16, 100])
    def test_update_many_matches_sequential_updates(self, capacity, rng):
        scalar_tree, batch_tree = SumTree(capacity), SumTree(capacity)
        for _ in range(15):
            indices = rng.integers(0, capacity, size=int(rng.integers(1, 40)))
            priorities = rng.random(indices.size) * rng.choice(
                [1e-6, 1.0, 1e5], indices.size
            )
            for index, priority in zip(indices, priorities):
                scalar_tree.update(int(index), float(priority))
            batch_tree.update_many(indices, priorities)
            assert np.array_equal(scalar_tree._tree, batch_tree._tree)

    def test_update_many_duplicate_indices_fold_in_order(self):
        scalar_tree, batch_tree = SumTree(8), SumTree(8)
        indices = np.array([3, 3, 3, 5, 3, 5])
        priorities = np.array([1.0, 0.25, 7.5, 2.0, 0.125, 0.5])
        for index, priority in zip(indices, priorities):
            scalar_tree.update(int(index), float(priority))
        batch_tree.update_many(indices, priorities)
        assert np.array_equal(scalar_tree._tree, batch_tree._tree)
        assert batch_tree.get(3) == 0.125 and batch_tree.get(5) == 0.5

    def test_update_many_validation(self):
        tree = SumTree(4)
        with pytest.raises(IndexError):
            tree.update_many(np.array([4]), np.array([1.0]))
        with pytest.raises(ValueError):
            tree.update_many(np.array([0]), np.array([-1.0]))
        with pytest.raises(ValueError):
            tree.update_many(np.array([0, 1]), np.array([1.0]))

    def test_sample_many_matches_scalar_walks(self, rng):
        tree = SumTree(37)
        tree.update_many(rng.integers(0, 37, size=60), rng.random(60))
        values = rng.uniform(0, tree.total, size=200)
        scalar = [tree.sample(float(value)) for value in values]
        indices, priorities = tree.sample_many(values)
        assert np.array_equal(indices, np.array([s[0] for s in scalar]))
        assert np.array_equal(priorities, np.array([s[1] for s in scalar]))

    def test_sample_many_empty_tree_raises(self):
        with pytest.raises(ValueError):
            SumTree(4).sample_many(np.array([0.0]))


class TestPrioritizedReplayVectorized:
    def test_sample_and_update_interplay_is_bit_identical(self, rng):
        """200 interleaved sample/update/push rounds: identical streams."""
        transitions = _make_transitions(rng, 600)
        scalar = PrioritizedReplayBuffer(128, seed=5)
        batched = PrioritizedReplayBuffer(128, seed=5)
        for transition in transitions[:300]:
            scalar.push(transition)
        batched.push_many(transitions[:300])
        assert np.array_equal(scalar._tree._tree, batched._tree._tree)
        assert scalar._next == batched._next and scalar._size == batched._size

        extra = iter(transitions[300:])
        for round_index in range(200):
            reference = scalar._sample_scalar(32)
            batch = batched.sample(32)
            assert np.array_equal(reference.indices, batch.indices)
            assert np.array_equal(reference.weights, batch.weights)
            errors = rng.normal(size=32) * 10
            scalar._update_priorities_scalar(reference.indices, errors)
            batched.update_priorities(batch.indices, errors)
            assert np.array_equal(scalar._tree._tree, batched._tree._tree)
            assert scalar._max_priority == batched._max_priority
            if round_index % 10 == 0:
                fresh = [next(extra), next(extra)]
                for transition in fresh:
                    scalar.push(transition)
                batched.push_many(fresh)

    def test_large_batch_update_takes_the_vectorized_path(self, rng):
        """Batches >= 64 refresh through SumTree.update_many; identical."""
        transitions = _make_transitions(rng, 300)
        scalar = PrioritizedReplayBuffer(256, seed=2)
        batched = PrioritizedReplayBuffer(256, seed=2)
        for transition in transitions:
            scalar.push(transition)
        batched.push_many(transitions)
        for _ in range(20):
            indices = rng.integers(0, 256, size=128)
            errors = rng.normal(size=128) * rng.choice([1e-4, 1.0, 1e3], 128)
            scalar._update_priorities_scalar(indices, errors)
            batched.update_priorities(indices, errors)
            assert np.array_equal(scalar._tree._tree, batched._tree._tree)
            assert scalar._max_priority == batched._max_priority

    def test_push_many_wraps_like_repeated_push(self, rng):
        transitions = _make_transitions(rng, 25)
        scalar = PrioritizedReplayBuffer(8, seed=1)
        batched = PrioritizedReplayBuffer(8, seed=1)
        for transition in transitions:
            scalar.push(transition)
        batched.push_many(transitions)  # wraps the ring three times
        assert np.array_equal(scalar._tree._tree, batched._tree._tree)
        assert scalar._next == batched._next and len(scalar) == len(batched)
        assert all(
            scalar._storage[i] is batched._storage[i] for i in range(8)
        )

    def test_prewrap_unfilled_slot_fallback_matches_scalar(self, rng):
        """A draw landing on a not-yet-filled slot rewinds and replays.

        The fallback is only reachable before the buffer wraps (and needs a
        zero-priority region adjacent to live leaves), so the tree is rigged
        directly: leaf 2 gets priority while ``storage[2]`` is still None.
        The batched path must detect it, rewind the generator, and produce
        exactly the scalar loop's indices/weights — including the extra
        mid-stream ``integers`` draw the fallback consumes.
        """
        transitions = _make_transitions(rng, 2)
        scalar = PrioritizedReplayBuffer(4, seed=11)
        batched = PrioritizedReplayBuffer(4, seed=11)
        for buffer in (scalar, batched):
            for transition in transitions:
                buffer.push(transition)
            buffer._tree.update(2, 5.0)
        reference = scalar._sample_scalar(16)
        batch = batched.sample(16)
        assert np.array_equal(reference.indices, batch.indices)
        assert np.array_equal(reference.weights, batch.weights)
        # Every returned transition is a real (filled) slot.
        assert (batch.indices < 2).all()
        # And the RNG streams stayed in lockstep for the next call too.
        assert np.array_equal(
            scalar._sample_scalar(8).indices, batched.sample(8).indices
        )

    def test_zero_priority_weights_degrade_to_uniform(self):
        """All-zero sampled priorities with β > 0 must not produce NaNs."""
        weights = PrioritizedReplayBuffer._normalized_weights(
            np.zeros(8), total=1.0, size=8, beta=0.5
        )
        assert np.array_equal(weights, np.ones(8))

    def test_degenerate_overflow_weights_degrade_to_uniform(self):
        """A priority underflowing to probability 0 makes its raw weight
        infinite; the guard must keep the batch finite."""
        priorities = np.array([1.0, 0.0, 2.0])
        weights = PrioritizedReplayBuffer._normalized_weights(
            priorities, total=3.0, size=3, beta=0.4
        )
        assert np.all(np.isfinite(weights))
        assert np.array_equal(weights, np.ones(3))

    def test_normal_weights_match_historical_formula(self):
        priorities = np.array([0.5, 1.0, 0.25])
        total = 1.75
        probabilities = priorities / max(total, 1e-12)
        expected = (3 * probabilities) ** (-0.6)
        expected = expected / expected.max()
        got = PrioritizedReplayBuffer._normalized_weights(
            priorities, total=total, size=3, beta=0.6
        )
        assert np.array_equal(got, expected)


class TestPerDrawPool:
    """The multi-step pre-drawn uniform pool must be RNG-stream-exact.

    ``sample`` pre-draws ``PER_PREDRAW_STEPS`` steps' worth of raw doubles
    per generator call; slicing that pool step by step must yield exactly
    the doubles a pool-free buffer draws one ``uniform`` call at a time —
    across pool refills, partial drains, and mid-stream scalar entry
    points (which rewind the pool).
    """

    def _filled_pair(self, rng, capacity=128, fill=200, seed=9):
        transitions = _make_transitions(rng, fill)
        scalar = PrioritizedReplayBuffer(capacity, seed=seed)
        pooled = PrioritizedReplayBuffer(capacity, seed=seed)
        for transition in transitions:
            scalar.push(transition)
        pooled.push_many(transitions)
        return scalar, pooled

    def _assert_round(self, scalar, pooled, batch_size, rng):
        reference = scalar._sample_scalar(batch_size)
        batch = pooled.sample(batch_size)
        assert np.array_equal(reference.indices, batch.indices), batch_size
        assert np.array_equal(reference.weights, batch.weights), batch_size
        errors = rng.normal(size=batch_size) * 5
        scalar._update_priorities_scalar(reference.indices, errors)
        pooled.update_priorities(batch.indices, errors)
        assert np.array_equal(scalar._tree._tree, pooled._tree._tree)

    def test_constant_batch_size_spans_many_pools(self, rng):
        """At batch 32 a pool covers PER_PREDRAW_STEPS calls; 50 rounds
        force several full drain-and-refill cycles."""
        from repro.core.replay import PER_PREDRAW_STEPS

        scalar, pooled = self._filled_pair(rng)
        rounds = PER_PREDRAW_STEPS * 6 + 2  # refills plus a partial pool
        for _ in range(rounds):
            self._assert_round(scalar, pooled, 32, rng)

    def test_varying_batch_sizes_straddle_pool_boundaries(self, rng):
        """Cycling 1/7/32/64 makes calls drain the pool mid-slice: the
        tail-plus-shortfall path must splice the stream seamlessly."""
        scalar, pooled = self._filled_pair(rng, capacity=256, fill=300)
        for _ in range(8):
            for batch_size in (1, 7, 32, 64):
                self._assert_round(scalar, pooled, batch_size, rng)

    def test_scalar_entry_point_mid_pool_rewinds_exactly(self, rng):
        """``_sample_scalar`` on a buffer holding a half-consumed pool must
        rewind the generator to the first unconsumed double, keeping the
        whole interleaved sequence stream-identical to a pool-free run."""
        scalar, pooled = self._filled_pair(rng, seed=21)
        for batch_size, entry in (
            (16, "pooled"),   # opens a pool, consumes 1/8th
            (16, "scalar"),   # must rewind the remaining 7/8ths
            (8, "pooled"),
            (8, "pooled"),
            (24, "scalar"),
            (32, "pooled"),
        ):
            reference = scalar._sample_scalar(batch_size)
            if entry == "pooled":
                batch = pooled.sample(batch_size)
            else:
                batch = pooled._sample_scalar(batch_size)
            assert np.array_equal(reference.indices, batch.indices)
            assert np.array_equal(reference.weights, batch.weights)
        # Rewinding the still-open pool restores the exact pool-free
        # generator state — the invariant the rewind exists to provide.
        pooled._abandon_pool()
        assert (
            scalar._rng.bit_generator.state["state"]
            == pooled._rng.bit_generator.state["state"]
        )

    def test_prewrap_fallback_discards_pool(self, rng):
        """The unfilled-slot fallback replays the draws scalar-style from
        the pool checkpoint — even when the pool was opened by an earlier,
        smaller call."""
        transitions = _make_transitions(rng, 3)
        scalar = PrioritizedReplayBuffer(8, seed=13)
        pooled = PrioritizedReplayBuffer(8, seed=13)
        for buffer in (scalar, pooled):
            for transition in transitions:
                buffer.push(transition)
        self._assert_round(scalar, pooled, 4, rng)  # opens a pool
        for buffer in (scalar, pooled):
            buffer._tree.update(5, 50.0)  # unfilled slot dominates the mass
        reference = scalar._sample_scalar(16)
        batch = pooled.sample(16)
        assert np.array_equal(reference.indices, batch.indices)
        assert np.array_equal(reference.weights, batch.weights)
        assert (batch.indices < 3).all()
        self._assert_round(scalar, pooled, 16, rng)  # streams still aligned
