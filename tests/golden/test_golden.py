"""Golden-result regression harness.

Records a fingerprint — per-approach cost breakdowns, rounded — of a small
deterministic experiment and compares every future run against it, so
refactors of the pipeline/executor (e.g. new parallelism or caching layers)
are verified to leave the *numbers* untouched.  The same fingerprint must be
reproduced serially and with ``n_workers=2``: the schedule may never change
the results.

Determinism requires ``charge_training_time=False`` (wall-clock training
cost is the one intentionally non-deterministic quantity — see
``ExperimentConfig``); everything else draws from keyed RNG streams.

To re-record after an *intentional* result change::

    python -m pytest tests/golden --update-golden

and commit the refreshed ``golden_small.json`` together with the change
that motivated it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import pytest

from repro.config import ScenarioConfig
from repro.evaluation.experiment import ExperimentConfig, run_experiment

GOLDEN_FILE = Path(__file__).with_name("golden_small.json")

#: Costs are node–hours; three decimals is far below any real behavioural
#: change yet immune to last-ulp float noise in accumulation order.
ROUND_DIGITS = 3


def golden_config(n_workers: int = 1) -> ExperimentConfig:
    """Small-but-complete schedule: every approach group, six splits."""
    return ExperimentConfig(
        rl_episodes=15,
        rl_hyperparam_trials=1,
        rl_hidden_sizes=(16, 8),
        rf_n_estimators=5,
        rf_max_depth=5,
        threshold_grid_size=6,
        charge_training_time=False,
        n_workers=n_workers,
    )


def fingerprint(result) -> Dict[str, Dict[str, float]]:
    """Per-approach rounded cost fingerprint of an ``ExperimentResult``."""
    recorded: Dict[str, Dict[str, float]] = {}
    for name in result.approach_names:
        costs = result.approaches[name].total_costs
        recorded[name] = {
            "total": round(costs.total, ROUND_DIGITS),
            "ue_cost": round(costs.ue_cost, ROUND_DIGITS),
            "mitigation_cost": round(costs.mitigation_cost, ROUND_DIGITS),
            "training_cost": round(costs.training_cost, ROUND_DIGITS),
            "n_ues": int(costs.n_ues),
            "n_mitigations": int(costs.n_mitigations),
        }
    return recorded


def golden_diff(
    recorded: Dict[str, Dict[str, float]], actual: Dict[str, Dict[str, float]]
) -> List[str]:
    """Human-readable field-by-field differences (empty when identical)."""
    lines: List[str] = []
    for name in sorted(set(recorded) - set(actual)):
        lines.append(f"approach {name!r}: recorded but missing from this run")
    for name in sorted(set(actual) - set(recorded)):
        lines.append(f"approach {name!r}: produced by this run but not recorded")
    for name in sorted(set(recorded) & set(actual)):
        for field_name in recorded[name]:
            want = recorded[name][field_name]
            got = actual[name].get(field_name)
            if got != want:
                lines.append(
                    f"{name}.{field_name}: recorded {want!r} != actual {got!r}"
                )
    return lines


def _load_recorded() -> Dict[str, Dict[str, float]]:
    if not GOLDEN_FILE.exists():
        pytest.fail(
            f"golden file {GOLDEN_FILE} is missing; record it with "
            "`python -m pytest tests/golden --update-golden` and commit it"
        )
    return json.loads(GOLDEN_FILE.read_text())


@pytest.mark.parametrize("n_workers", [1, 2], ids=["serial", "workers-2"])
def test_golden_small(n_workers, request):
    """``ScenarioConfig.small()`` reproduces the recorded fingerprints."""
    result = run_experiment(ScenarioConfig.small(), golden_config(n_workers))
    actual = fingerprint(result)

    if request.config.getoption("--update-golden"):
        if not GOLDEN_FILE.exists() or n_workers == 1:
            GOLDEN_FILE.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        # Fall through: even while recording, every parametrization must
        # agree with what is on disk (catches serial-vs-parallel drift at
        # record time instead of at the next comparison).

    recorded = _load_recorded()
    differences = golden_diff(recorded, actual)
    assert not differences, (
        f"golden fingerprint mismatch ({len(differences)} differences, "
        f"n_workers={n_workers}).\n"
        "If this change is intentional, re-record with "
        "`python -m pytest tests/golden --update-golden` and commit "
        "golden_small.json; otherwise a refactor changed the numbers:\n  "
        + "\n  ".join(differences)
    )


def test_golden_small_with_store_attached(tmp_path, request):
    """The store must be invisible to the numbers: a ``Study`` run writing
    into a fresh :class:`~repro.store.ArtifactStore` reproduces the recorded
    fingerprint, and so does the resumed (loaded-from-disk) result."""
    from repro.store import ArtifactStore
    from repro.study import Study

    if request.config.getoption("--update-golden") and not GOLDEN_FILE.exists():
        pytest.skip("record the golden file with the plain experiment first")

    store = ArtifactStore(tmp_path / "runs")
    study = Study.from_scenario(ScenarioConfig.small(), store=store)
    computed = fingerprint(study.run(golden_config()))

    recorded = _load_recorded()
    differences = golden_diff(recorded, computed)
    assert not differences, (
        "store-attached run diverged from the golden fingerprint:\n  "
        + "\n  ".join(differences)
    )

    resumed = Study.from_scenario(ScenarioConfig.small(), store=store)
    reloaded = fingerprint(resumed.resume(golden_config()))
    differences = golden_diff(recorded, reloaded)
    assert not differences, (
        "store-reloaded result diverged from the golden fingerprint:\n  "
        + "\n  ".join(differences)
    )


class TestGoldenDiff:
    """The comparator itself must produce a readable diff."""

    RECORDED = {
        "Oracle": {"total": 10.0, "n_ues": 3},
        "Never-mitigate": {"total": 20.0, "n_ues": 3},
    }

    def test_identical_fingerprints_have_no_diff(self):
        assert golden_diff(self.RECORDED, self.RECORDED) == []

    def test_perturbed_cost_names_the_field_and_both_values(self):
        actual = {
            "Oracle": {"total": 10.5, "n_ues": 3},
            "Never-mitigate": {"total": 20.0, "n_ues": 3},
        }
        diff = golden_diff(self.RECORDED, actual)
        assert diff == ["Oracle.total: recorded 10.0 != actual 10.5"]

    def test_missing_and_extra_approaches_reported(self):
        actual = {
            "Oracle": {"total": 10.0, "n_ues": 3},
            "RL": {"total": 12.0, "n_ues": 3},
        }
        diff = golden_diff(self.RECORDED, actual)
        assert "approach 'Never-mitigate': recorded but missing from this run" in diff
        assert "approach 'RL': produced by this run but not recorded" in diff
