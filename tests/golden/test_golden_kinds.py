"""Golden fingerprints of the suite-reachable scenario *kinds*.

One recorded fingerprint per extended kind — correlated burst faults,
mcelog-sourced real traces, heterogeneous fleets, diurnal/backfill job
mixes — mirroring ``test_golden.py``: each must reproduce bit-for-bit both
serially and with ``n_workers=2``, and all are re-recordable with::

    python -m pytest tests/golden --update-golden

The scenarios here are exactly what the matching blocks of
``examples/paper_suite.yaml`` compile to, so these goldens also pin the
suite layer's compilation output end to end.
"""

from __future__ import annotations

import io
import json
from dataclasses import replace
from pathlib import Path
from typing import Dict

import pytest

from repro.config import ScenarioConfig
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.telemetry.topology import FleetSegment
from repro.utils.timeutils import DAY, HOUR

from tests.golden.test_golden import fingerprint, golden_diff

GOLDEN_DIR = Path(__file__).parent


def _kind_config(n_workers: int = 1, **overrides) -> ExperimentConfig:
    """Cheap deterministic schedule: RF family + statics, no RL search."""
    return ExperimentConfig(
        include_rl=False,
        rf_n_estimators=5,
        rf_max_depth=5,
        threshold_grid_size=6,
        charge_training_time=False,
        n_workers=n_workers,
    ).with_overrides(**overrides)


def _burst_scenario() -> ScenarioConfig:
    return replace(
        ScenarioConfig.small(seed=11).with_fault_overrides(
            correlated_bursts=3,
            correlated_burst_width=4,
            correlated_burst_span_seconds=1 * HOUR,
            correlated_burst_repeat_mean=2.0,
        ),
        name="burst-faults",
    )


def _mcelog_scenario():
    """The small scenario replayed through the mcelog text format."""
    from repro.telemetry.generator import TelemetryGenerator
    from repro.telemetry.mcelog import format_full_log, parse_mcelog

    scenario = replace(
        ScenarioConfig.small(seed=13).with_duration(60 * DAY),
        name="real-trace",
    )
    log = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        seed=scenario.seed,
        duration_seconds=scenario.duration_seconds,
    ).generate()
    return scenario, parse_mcelog(io.StringIO(format_full_log(log)))


def _fleet_scenario() -> ScenarioConfig:
    base = ScenarioConfig.small()
    topology = replace(
        base.topology,
        segments=(
            FleetSegment(
                name="gen1", n_nodes=24, manufacturer=0,
                ce_scale=1.8, ue_scale=2.2, policy="always",
            ),
            FleetSegment(
                name="gen2", n_nodes=24, manufacturer=2,
                ce_scale=0.7, ue_scale=0.6, policy="sc20",
            ),
        ),
    )
    return replace(base.with_topology(topology), name="hetero-fleet")


def _diurnal_scenario() -> ScenarioConfig:
    return replace(
        ScenarioConfig.small().with_workload_overrides(
            submit_pattern="diurnal",
            diurnal_amplitude=0.8,
            scheduler="backfill",
        ),
        name="diurnal-backfill",
    )


def _run_kind(kind: str, n_workers: int) -> Dict[str, Dict[str, float]]:
    if kind == "burst":
        result = run_experiment(_burst_scenario(), _kind_config(n_workers))
    elif kind == "mcelog":
        scenario, error_log = _mcelog_scenario()
        result = run_experiment(
            scenario, _kind_config(n_workers), error_log=error_log
        )
    elif kind == "fleet":
        result = run_experiment(
            _fleet_scenario(), _kind_config(n_workers, include_fleet_mix=True)
        )
    elif kind == "diurnal":
        result = run_experiment(_diurnal_scenario(), _kind_config(n_workers))
    else:  # pragma: no cover
        raise ValueError(kind)
    return fingerprint(result)


KINDS = ("burst", "mcelog", "fleet", "diurnal")


def _golden_file(kind: str) -> Path:
    return GOLDEN_DIR / f"golden_kind_{kind}.json"


@pytest.mark.parametrize("n_workers", [1, 2], ids=["serial", "workers-2"])
@pytest.mark.parametrize("kind", KINDS)
def test_golden_kind(kind, n_workers, request):
    """Each extended scenario kind reproduces its recorded fingerprint."""
    path = _golden_file(kind)
    actual = _run_kind(kind, n_workers)

    if request.config.getoption("--update-golden"):
        if not path.exists() or n_workers == 1:
            path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        # Every parametrization must still agree with what is on disk, so
        # serial-vs-parallel drift is caught at record time.

    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; record it with "
            "`python -m pytest tests/golden --update-golden` and commit it"
        )
    recorded = json.loads(path.read_text())
    differences = golden_diff(recorded, actual)
    assert not differences, (
        f"golden fingerprint mismatch for kind {kind!r} "
        f"(n_workers={n_workers}).\n"
        "If this change is intentional, re-record with "
        "`python -m pytest tests/golden --update-golden` and commit "
        f"{path.name}; otherwise a refactor changed the numbers:\n  "
        + "\n  ".join(differences)
    )


def test_fleet_golden_includes_fleet_mix():
    """The heterogeneous-fleet golden actually exercises the composite."""
    path = _golden_file("fleet")
    if not path.exists():
        pytest.skip("record the golden files first (--update-golden)")
    assert "Fleet-mix" in json.loads(path.read_text())
