"""Golden regression for the distributed sweep path.

Two claim-mode worker *subprocesses* race over a one-point sweep whose
point is exactly the golden scenario (``ScenarioConfig.small()`` under the
golden config).  The reduced result must reproduce the recorded
``golden_small.json`` fingerprint — the distributed machinery (store
backends, leases, subprocess workers, reduce) is yet another schedule, and
a schedule may never change the numbers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.distributed import reduce_sweep
from repro.store import ArtifactStore

from tests.distributed._worker import golden_config, golden_spec
from tests.golden.test_golden import _load_recorded, fingerprint, golden_diff

REPO = Path(__file__).resolve().parents[2]
WORKER = REPO / "tests" / "distributed" / "_worker.py"


def test_two_worker_distributed_sweep_reproduces_the_golden_fingerprint(
    tmp_path, request
):
    if request.config.getoption("--update-golden"):
        pytest.skip("record the golden file with the plain experiment first")

    store_dir = tmp_path / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    workers = [
        subprocess.Popen(
            [
                sys.executable, str(WORKER),
                "--store", str(store_dir),
                "--mode", "claim",
                "--golden",
                "--worker-id", f"golden-w{i}",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO),
        )
        for i in range(2)
    ]
    outcomes = []
    for proc in workers:
        stdout, stderr = proc.communicate(timeout=600)
        assert proc.returncode == 0, f"worker failed:\n{stderr}"
        outcomes.append(json.loads(stdout.strip().splitlines()[-1]))

    # Exactly one worker computed the point; the other loaded or conflicted.
    computed = [label for o in outcomes for label in o["computed"]]
    assert computed == ["small"]
    assert any(o["reduced"] for o in outcomes)

    result = reduce_sweep(golden_spec(), golden_config(), ArtifactStore(store_dir))
    assert result is not None
    differences = golden_diff(_load_recorded(), fingerprint(result["small"]))
    assert not differences, (
        "distributed sweep diverged from the golden fingerprint:\n  "
        + "\n  ".join(differences)
    )
