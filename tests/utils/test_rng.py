"""Tests for the deterministic RNG factory."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngFactory, as_generator


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).stream("telemetry")
        b = RngFactory(42).stream("telemetry")
        assert np.array_equal(a.integers(0, 1000, 10), b.integers(0, 1000, 10))

    def test_different_keys_give_different_streams(self):
        factory = RngFactory(42)
        a = factory.stream("telemetry").integers(0, 10**9, 20)
        b = factory.stream("workload").integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_different_seeds_give_different_streams(self):
        a = RngFactory(1).stream("x").integers(0, 10**9, 20)
        b = RngFactory(2).stream("x").integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_stream_independent_of_creation_order(self):
        f1 = RngFactory(7)
        f1.stream("first")
        late = f1.stream("second").integers(0, 10**9, 10)
        f2 = RngFactory(7)
        early = f2.stream("second").integers(0, 10**9, 10)
        assert np.array_equal(late, early)

    def test_child_factory_differs_from_parent(self):
        parent = RngFactory(5)
        child = parent.child("sub")
        a = parent.stream("k").integers(0, 10**9, 10)
        b = child.stream("k").integers(0, 10**9, 10)
        assert not np.array_equal(a, b)

    def test_child_factory_is_deterministic(self):
        a = RngFactory(5).child("sub").stream("k").integers(0, 10**9, 10)
        b = RngFactory(5).child("sub").stream("k").integers(0, 10**9, 10)
        assert np.array_equal(a, b)

    def test_none_seed_allowed(self):
        factory = RngFactory(None)
        assert isinstance(factory.stream("x"), np.random.Generator)
        assert isinstance(factory.child("y"), RngFactory)

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
    def test_streams_are_reproducible_property(self, seed, key):
        a = RngFactory(seed).stream(key).random(5)
        b = RngFactory(seed).stream(key).random(5)
        assert np.array_equal(a, b)


class TestAsGenerator:
    def test_from_int(self):
        assert isinstance(as_generator(3), np.random.Generator)

    def test_from_generator_is_identity(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_factory_uses_key(self):
        factory = RngFactory(9)
        a = as_generator(factory, "alpha").integers(0, 10**9, 5)
        b = factory.stream("alpha").integers(0, 10**9, 5)
        assert np.array_equal(a, b)

    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)
