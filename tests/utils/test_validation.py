"""Tests for the validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_sorted,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3.5) == 3.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_fractions(self, value):
        assert check_fraction("x", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, 2.0])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError):
            check_fraction("x", value)


class TestCheckSorted:
    def test_accepts_sorted(self):
        out = check_sorted("x", [1, 2, 2, 3])
        assert isinstance(out, np.ndarray)

    def test_accepts_empty_and_single(self):
        assert check_sorted("x", []).size == 0
        assert check_sorted("x", [5]).size == 1

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            check_sorted("x", [3, 1, 2])
