"""Tests for the time and cost unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.timeutils import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    format_duration,
    node_hours,
    node_minutes_to_hours,
)


class TestConstants:
    def test_relationships(self):
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY


class TestNodeHours:
    def test_single_node_hour(self):
        assert node_hours(1, HOUR) == pytest.approx(1.0)

    def test_scales_with_nodes(self):
        assert node_hours(64, HOUR) == pytest.approx(64.0)

    def test_paper_example(self):
        # A 100-node job losing half a day of work loses 1200 node-hours.
        assert node_hours(100, 12 * HOUR) == pytest.approx(1200.0)

    @given(
        st.floats(min_value=0, max_value=1e5),
        st.floats(min_value=0, max_value=1e9),
    )
    def test_non_negative(self, nodes, seconds):
        assert node_hours(nodes, seconds) >= 0.0


class TestNodeMinutes:
    def test_two_node_minutes(self):
        assert node_minutes_to_hours(2) == pytest.approx(2 / 60)

    def test_sixty_node_minutes_is_one_hour(self):
        assert node_minutes_to_hours(60) == pytest.approx(1.0)


class TestFormatDuration:
    def test_seconds_only(self):
        assert format_duration(65) == "00:01:05"

    def test_days(self):
        assert format_duration(2 * DAY + 3 * HOUR + 4 * MINUTE + 5) == "2d 03:04:05"

    def test_negative(self):
        assert format_duration(-HOUR).startswith("-")

    def test_zero(self):
        assert format_duration(0) == "00:00:00"
