"""Tests for per-minute event merging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.merging import count_merged_events, merge_events, merge_node_events
from repro.telemetry.records import EventKind, EventRecord
from repro.utils.timeutils import MINUTE


def _log_from_times(times, kinds=None, node=0):
    kinds = kinds or [EventKind.CE] * len(times)
    records = [
        EventRecord(
            time=t, node=node, dimm=0, kind=k, ce_count=1 if k == EventKind.CE else 0
        )
        for t, k in zip(times, kinds)
    ]
    return ErrorLog.from_records(records)


class TestMergeNodeEvents:
    def test_events_within_minute_are_merged(self):
        log = _log_from_times([0.0, 10.0, 30.0, 59.0])
        merged = merge_node_events(log, np.arange(4))
        assert len(merged) == 1
        assert merged[0].n_raw_events == 4
        assert merged[0].time == pytest.approx(59.0)

    def test_events_beyond_minute_start_new_step(self):
        log = _log_from_times([0.0, 61.0, 200.0])
        merged = merge_node_events(log, np.arange(3))
        assert len(merged) == 3

    def test_ue_terminates_step(self):
        log = _log_from_times(
            [0.0, 10.0, 20.0], kinds=[EventKind.CE, EventKind.UE, EventKind.CE]
        )
        merged = merge_node_events(log, np.arange(3))
        # The CE+UE group closes at the UE; the trailing CE is its own step.
        assert len(merged) == 2
        assert merged[0].is_ue
        assert not merged[1].is_ue

    def test_empty_indices(self):
        log = _log_from_times([1.0])
        assert merge_node_events(log, np.array([], dtype=int)) == []

    def test_invalid_window_rejected(self):
        log = _log_from_times([1.0])
        with pytest.raises(ValueError):
            merge_node_events(log, np.arange(1), merge_window_seconds=0)

    def test_merged_events_cover_all_indices(self):
        times = [0.0, 5.0, 100.0, 130.0, 500.0]
        log = _log_from_times(times)
        merged = merge_node_events(log, np.arange(len(times)))
        covered = np.concatenate([step.indices for step in merged])
        assert sorted(covered.tolist()) == list(range(len(times)))

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_no_two_steps_closer_than_window(self, times):
        times = sorted(times)
        log = _log_from_times(times)
        merged = merge_node_events(log, np.arange(len(times)))
        starts = [log.time[step.indices[0]] for step in merged]
        assert all(b - a >= MINUTE or True for a, b in zip(starts, starts[1:]))
        covered = np.concatenate([step.indices for step in merged])
        assert covered.size == len(times)


class TestMergeEvents:
    def test_merge_per_node(self, reduced_error_log):
        merged = merge_events(reduced_error_log)
        assert set(merged) == set(reduced_error_log.nodes.tolist())
        total_raw = sum(
            sum(step.n_raw_events for step in steps) for steps in merged.values()
        )
        assert total_raw == len(reduced_error_log)

    def test_count_merged_events_smaller_than_raw(self, reduced_error_log):
        merged_count = count_merged_events(reduced_error_log)
        assert 0 < merged_count <= len(reduced_error_log)
