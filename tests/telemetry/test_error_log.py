"""Tests for the columnar ErrorLog container."""

import numpy as np
import pytest

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind, EventRecord


def _sample_records():
    return [
        EventRecord(time=30.0, node=1, dimm=5, kind=EventKind.CE, ce_count=3,
                    rank=0, bank=1, row=2, col=3, manufacturer=0),
        EventRecord(time=10.0, node=0, dimm=1, kind=EventKind.CE, ce_count=1,
                    rank=1, bank=1, row=9, col=9, manufacturer=1),
        EventRecord(time=20.0, node=1, dimm=5, kind=EventKind.UE_WARNING, manufacturer=0),
        EventRecord(time=40.0, node=1, dimm=5, kind=EventKind.UE, manufacturer=0),
        EventRecord(time=50.0, node=2, dimm=-1, kind=EventKind.BOOT),
        EventRecord(time=60.0, node=0, dimm=2, kind=EventKind.OVERTEMP, manufacturer=1),
    ]


@pytest.fixture()
def log():
    return ErrorLog.from_records(_sample_records())


class TestConstruction:
    def test_empty(self):
        empty = ErrorLog.empty()
        assert len(empty) == 0
        assert empty.time_range() == (0.0, 0.0)

    def test_records_are_time_sorted(self, log):
        assert np.all(np.diff(log.time) >= 0)

    def test_roundtrip_records(self, log):
        records = log.to_records()
        assert len(records) == 6
        assert records[0].time == 10.0
        rebuilt = ErrorLog.from_records(records)
        assert rebuilt == log

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            ErrorLog(time=[1.0, 2.0], node=[1])

    def test_columns_are_read_only(self, log):
        with pytest.raises(AttributeError):
            log.time = np.zeros(3)

    def test_concatenate(self, log):
        other = ErrorLog.from_records(
            [EventRecord(time=5.0, node=9, kind=EventKind.BOOT)]
        )
        merged = ErrorLog.concatenate([log, other])
        assert len(merged) == 7
        assert merged.time[0] == 5.0

    def test_concatenate_empty_list(self):
        assert len(ErrorLog.concatenate([])) == 0


class TestSelection:
    def test_filter_kind(self, log):
        ces = log.filter_kind(EventKind.CE)
        assert len(ces) == 2
        assert set(ces.node.tolist()) == {0, 1}

    def test_filter_time(self, log):
        window = log.filter_time(15.0, 45.0)
        assert len(window) == 3
        assert window.time.min() >= 15.0
        assert window.time.max() < 45.0

    def test_filter_node(self, log):
        assert len(log.filter_node(1)) == 3

    def test_filter_nodes(self, log):
        assert len(log.filter_nodes([0, 2])) == 3

    def test_filter_manufacturer_keeps_node_level_events(self):
        records = _sample_records()
        # Node 2 only has a boot; give node 0 manufacturer 1 events.
        log = ErrorLog.from_records(records)
        sub = log.filter_manufacturer(1)
        # Manufacturer-1 events are on node 0; boots on node 0 kept, node 2 dropped.
        assert set(sub.node.tolist()) <= {0}

    def test_exclude_dimms(self, log):
        out = log.exclude_dimms([5])
        assert len(out) == 3
        assert 5 not in out.dimm.tolist()

    def test_exclude_no_dimms_is_identity(self, log):
        assert log.exclude_dimms([]) == log


class TestSummaries:
    def test_ue_mask_includes_overtemp(self, log):
        assert log.count_ues() == 2

    def test_total_corrected_errors_sums_counts(self, log):
        assert log.total_corrected_errors() == 4

    def test_stats(self, log):
        stats = log.stats()
        assert stats.n_events == 6
        assert stats.n_ce_records == 2
        assert stats.n_corrected_errors == 4
        assert stats.n_uncorrected_errors == 2
        assert stats.n_ue_warnings == 1
        assert stats.n_boots == 1
        assert stats.n_nodes_with_events == 3
        assert stats.time_span_seconds == pytest.approx(50.0)

    def test_ue_times(self, log):
        assert np.array_equal(log.ue_times, [40.0, 60.0])

    def test_nodes(self, log):
        assert np.array_equal(log.nodes, [0, 1, 2])


class TestGrouping:
    def test_node_slices_cover_all_events(self, log):
        slices = log.node_slices()
        total = sum(len(idx) for idx in slices.values())
        assert total == len(log)

    def test_node_slices_are_time_ordered(self, log):
        for node, idx in log.node_slices().items():
            times = log.time[idx]
            assert np.all(np.diff(times) >= 0)
            assert np.all(log.node[idx] == node)

    def test_per_node(self, log):
        per_node = log.per_node()
        assert set(per_node) == {0, 1, 2}
        assert len(per_node[1]) == 3

    def test_equality(self, log):
        assert log == ErrorLog.from_records(_sample_records())
        assert log != log.filter_node(1)
