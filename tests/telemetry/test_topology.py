"""Tests for the cluster topology model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.topology import ClusterTopology


class TestConstruction:
    def test_basic_properties(self):
        topo = ClusterTopology(n_nodes=10, dimms_per_node=4)
        assert topo.n_dimms == 40
        assert topo.n_manufacturers == 3

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=0)

    def test_rejects_bad_shares(self):
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=4, manufacturer_shares=(0.5, 0.1))

    def test_rejects_bad_mixed_fraction(self):
        with pytest.raises(ValueError):
            ClusterTopology(n_nodes=4, mixed_node_fraction=1.5)


class TestDimmNodeMapping:
    def test_dimm_node_scalar(self):
        topo = ClusterTopology(n_nodes=10, dimms_per_node=4)
        assert topo.dimm_node(0) == 0
        assert topo.dimm_node(3) == 0
        assert topo.dimm_node(4) == 1
        assert topo.dimm_node(39) == 9

    def test_dimm_node_vectorised(self):
        topo = ClusterTopology(n_nodes=10, dimms_per_node=4)
        nodes = topo.dimm_node(np.array([0, 4, 8, 39]))
        assert np.array_equal(nodes, [0, 1, 2, 9])

    def test_node_dimms_roundtrip(self):
        topo = ClusterTopology(n_nodes=6, dimms_per_node=8)
        for node in range(6):
            dimms = topo.node_dimms(node)
            assert len(dimms) == 8
            assert np.all(topo.dimm_node(dimms) == node)

    def test_node_dimms_out_of_range(self):
        topo = ClusterTopology(n_nodes=6, dimms_per_node=8)
        with pytest.raises(ValueError):
            topo.node_dimms(6)


class TestManufacturerAssignment:
    def test_shape_and_range(self):
        topo = ClusterTopology(n_nodes=50, dimms_per_node=4)
        manu = topo.assign_manufacturers(rng=np.random.default_rng(0))
        assert manu.shape == (200,)
        assert manu.min() >= 0 and manu.max() < 3

    def test_deterministic_given_rng(self):
        topo = ClusterTopology(n_nodes=30, dimms_per_node=4)
        a = topo.assign_manufacturers(rng=np.random.default_rng(5))
        b = topo.assign_manufacturers(rng=np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_nodes_are_mostly_homogeneous(self):
        topo = ClusterTopology(
            n_nodes=100, dimms_per_node=8, mixed_node_fraction=0.02
        )
        manu = topo.assign_manufacturers(rng=np.random.default_rng(1))
        per_node = manu.reshape(100, 8)
        mixed = sum(1 for row in per_node if len(np.unique(row)) > 1)
        assert mixed <= 4  # ~2 expected

    def test_shares_roughly_respected(self):
        topo = ClusterTopology(
            n_nodes=600, dimms_per_node=2, manufacturer_shares=(0.26, 0.21, 0.53)
        )
        manu = topo.assign_manufacturers(rng=np.random.default_rng(2))
        fractions = np.bincount(manu, minlength=3) / manu.size
        assert abs(fractions[2] - 0.53) < 0.08

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_assignment_covers_every_dimm(self, n_nodes, dimms_per_node):
        topo = ClusterTopology(n_nodes=n_nodes, dimms_per_node=dimms_per_node)
        manu = topo.assign_manufacturers(rng=np.random.default_rng(0))
        assert manu.shape == (topo.n_dimms,)
        assert np.all((manu >= 0) & (manu < topo.n_manufacturers))
