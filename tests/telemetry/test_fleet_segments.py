"""Heterogeneous fleets: FleetSegment and segmented ClusterTopology."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.serialization import SchemaError
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.topology import ClusterTopology, FleetSegment


def _segmented(n_nodes: int = 48) -> ClusterTopology:
    return ClusterTopology(
        n_nodes=n_nodes,
        dimms_per_node=4,
        manufacturer_shares=(0.26, 0.21, 0.53),
        segments=(
            FleetSegment(
                name="gen1", n_nodes=n_nodes // 2, manufacturer=0,
                ce_scale=2.0, ue_scale=2.5, policy="always",
            ),
            FleetSegment(
                name="gen2", n_nodes=n_nodes // 2, manufacturer=2,
                ce_scale=0.6, ue_scale=0.5,
            ),
        ),
    )


class TestFleetSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSegment(name="x", n_nodes=0, manufacturer=0)
        with pytest.raises(ValueError):
            FleetSegment(name="x", n_nodes=4, manufacturer=-1)
        with pytest.raises(ValueError):
            FleetSegment(name="x", n_nodes=4, manufacturer=0, ce_scale=-1.0)

    def test_round_trip(self):
        segment = FleetSegment(
            name="old", n_nodes=24, manufacturer=1,
            ce_scale=1.5, ue_scale=2.0, policy="sc20",
        )
        assert FleetSegment.from_dict(segment.to_dict()) == segment


class TestSegmentedTopology:
    def test_segment_node_totals_must_match(self):
        with pytest.raises(ValueError, match="48"):
            ClusterTopology(
                n_nodes=48,
                dimms_per_node=4,
                manufacturer_shares=(0.5, 0.5),
                segments=(
                    FleetSegment(name="a", n_nodes=10, manufacturer=0),
                ),
            )

    def test_segment_names_must_be_unique(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterTopology(
                n_nodes=48,
                dimms_per_node=4,
                manufacturer_shares=(0.5, 0.5),
                segments=(
                    FleetSegment(name="a", n_nodes=24, manufacturer=0),
                    FleetSegment(name="a", n_nodes=24, manufacturer=1),
                ),
            )

    def test_manufacturer_assignment_is_deterministic(self):
        topology = _segmented()
        dimm_manu = topology.assign_manufacturers(rng=1)
        # Same assignment for any seed: segments pin the manufacturer.
        np.testing.assert_array_equal(
            dimm_manu, topology.assign_manufacturers(rng=999)
        )
        per_node = dimm_manu.reshape(topology.n_nodes, topology.dimms_per_node)
        assert set(per_node[:24].ravel()) == {0}
        assert set(per_node[24:].ravel()) == {2}

    def test_n_manufacturers_covers_segment_indices(self):
        topology = ClusterTopology(
            n_nodes=8,
            dimms_per_node=2,
            manufacturer_shares=(1.0,),
            segments=(FleetSegment(name="a", n_nodes=8, manufacturer=5),),
        )
        assert topology.n_manufacturers == 6

    def test_node_segment_and_bounds(self):
        topology = _segmented()
        node_segment = topology.node_segment()
        assert node_segment.shape == (48,)
        assert list(topology.segment_bounds()) == [(0, 24), (24, 48)]
        assert set(node_segment[:24]) == {0}
        assert set(node_segment[24:]) == {1}
        with pytest.raises(ValueError):
            ClusterTopology(
                n_nodes=4, dimms_per_node=1, manufacturer_shares=(1.0,)
            ).node_segment()

    def test_round_trip(self):
        topology = _segmented()
        assert ClusterTopology.from_dict(topology.to_dict()) == topology

    def test_old_payloads_without_segments_still_load(self):
        plain = ClusterTopology(
            n_nodes=8, dimms_per_node=2, manufacturer_shares=(0.5, 0.5)
        )
        payload = plain.to_dict()
        del payload["segments"]
        assert ClusterTopology.from_dict(payload) == plain

    def test_unknown_payload_fields_rejected(self):
        payload = _segmented().to_dict()
        payload["bogus"] = 1
        with pytest.raises(SchemaError, match="bogus"):
            ClusterTopology.from_dict(payload)


class TestSegmentFaultScaling:
    def test_ce_and_ue_rates_follow_the_segment_scales(self):
        base = ScenarioConfig.small(seed=4)
        topology = _segmented(base.topology.n_nodes)
        log = TelemetryGenerator(
            topology,
            base.fault_model,
            seed=base.seed,
            duration_seconds=base.duration_seconds,
        ).generate()
        boundary = topology.segments[0].n_nodes
        ce = log.is_ce_mask if hasattr(log, "is_ce_mask") else ~log.is_ue_mask
        hot = int(np.count_nonzero(ce & (log.node < boundary)))
        cold = int(np.count_nonzero(ce & (log.node >= boundary)))
        # gen1 scales CEs 2.0x vs gen2's 0.6x; the ratio must show it.
        assert hot > cold

    def test_unsegmented_results_unchanged_by_the_feature(self):
        base = ScenarioConfig.small()
        log_a = TelemetryGenerator(
            base.topology,
            base.fault_model,
            seed=base.seed,
            duration_seconds=base.duration_seconds,
        ).generate()
        same = replace(base.topology, segments=())
        log_b = TelemetryGenerator(
            same,
            base.fault_model,
            seed=base.seed,
            duration_seconds=base.duration_seconds,
        ).generate()
        np.testing.assert_array_equal(log_a.time, log_b.time)
        np.testing.assert_array_equal(log_a.node, log_b.node)
