"""The correlated multi-node burst-failure mode of the fault model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.analysis.burst import BurstStatistics
from repro.telemetry.fault_model import FaultModelConfig
from repro.telemetry.generator import TelemetryGenerator
from repro.utils.timeutils import HOUR


def _generate(scenario: ScenarioConfig):
    return TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        seed=scenario.seed,
        duration_seconds=scenario.duration_seconds,
    ).generate()


def test_mode_defaults_to_inert():
    """``correlated_bursts=0`` leaves the generated log bit-identical."""
    base = ScenarioConfig.small()
    explicit = base.with_fault_overrides(
        correlated_bursts=0,
        correlated_burst_width=9,
        correlated_burst_span_seconds=5 * HOUR,
        correlated_burst_repeat_mean=7.0,
    )
    log_a, log_b = _generate(base), _generate(explicit)
    assert len(log_a) == len(log_b)
    np.testing.assert_array_equal(log_a.time, log_b.time)
    np.testing.assert_array_equal(log_a.node, log_b.node)
    np.testing.assert_array_equal(log_a.kind, log_b.kind)


def test_bursts_add_ues_on_clustered_nodes():
    base = ScenarioConfig.small(seed=11)
    burst = base.with_fault_overrides(
        correlated_bursts=3,
        correlated_burst_width=4,
        correlated_burst_span_seconds=1 * HOUR,
    )
    log_base, log_burst = _generate(base), _generate(burst)
    assert log_burst.count_ues() > log_base.count_ues()
    # The extra first-UEs arrive on spatially contiguous node windows: some
    # adjacent node pair must share a burst within the configured span.
    ue = log_burst.is_ue_mask
    nodes, times = log_burst.node[ue], log_burst.time[ue]
    close = [
        abs(int(n1) - int(n2))
        for i, (n1, t1) in enumerate(zip(nodes, times))
        for n2, t2 in zip(nodes[i + 1:], times[i + 1:])
        if abs(t1 - t2) <= 1 * HOUR and n1 != n2
    ]
    assert close and min(close) < 4


def test_burst_width_is_capped_by_the_cluster():
    tiny = ScenarioConfig.small().with_fault_overrides(
        correlated_bursts=1, correlated_burst_width=10_000
    )
    log = _generate(tiny)  # must not raise despite width >> n_nodes
    assert log.node.max() < tiny.topology.n_nodes


def test_generation_is_deterministic():
    scenario = ScenarioConfig.small(seed=23).with_fault_overrides(
        correlated_bursts=2
    )
    log_a, log_b = _generate(scenario), _generate(scenario)
    np.testing.assert_array_equal(log_a.time, log_b.time)
    np.testing.assert_array_equal(log_a.node, log_b.node)


@pytest.mark.parametrize(
    "field, value",
    [
        ("correlated_bursts", -1),
        ("correlated_burst_width", 0),
        ("correlated_burst_span_seconds", 0.0),
        ("correlated_burst_repeat_mean", -0.5),
    ],
)
def test_invalid_values_rejected(field, value):
    with pytest.raises(ValueError, match=field):
        FaultModelConfig(**{field: value})


def test_new_fields_round_trip():
    config = FaultModelConfig(
        correlated_bursts=4,
        correlated_burst_width=6,
        correlated_burst_span_seconds=2 * HOUR,
        correlated_burst_repeat_mean=1.5,
    )
    assert FaultModelConfig.from_dict(config.to_dict()) == config


def test_old_payloads_still_load():
    """Payloads recorded before the burst fields existed keep loading."""
    payload = FaultModelConfig().to_dict()
    for field in (
        "correlated_bursts",
        "correlated_burst_width",
        "correlated_burst_span_seconds",
        "correlated_burst_repeat_mean",
    ):
        del payload[field]
    loaded = FaultModelConfig.from_dict(payload)
    assert loaded.correlated_bursts == 0


def test_from_burst_statistics_lifts_measured_numbers():
    stats = BurstStatistics(
        n_raw_ues=333,
        n_first_ues=67,
        mean_burst_size=333 / 67,
        max_burst_size=30,
        burst_window_seconds=7 * 24 * HOUR,
    )
    config = FaultModelConfig.from_burst_statistics(stats)
    assert config.n_ue_bursts == 67
    assert config.ue_burst_repeat_mean == pytest.approx(333 / 67 - 1.0)
    assert config.quarantine_seconds == 7 * 24 * HOUR


def test_from_burst_statistics_round_trips_through_analysis():
    """generate -> measure -> calibrate reproduces the measured burst shape."""
    from repro.analysis.burst import ue_burst_statistics

    scenario = ScenarioConfig.small(seed=3)
    measured = ue_burst_statistics(
        _generate(scenario), scenario.fault_model.quarantine_seconds
    )
    calibrated = FaultModelConfig.from_burst_statistics(
        measured, base=scenario.fault_model
    )
    regenerated = _generate(
        scenario.with_fault_overrides(
            n_ue_bursts=calibrated.n_ue_bursts,
            ue_burst_repeat_mean=calibrated.ue_burst_repeat_mean,
            quarantine_seconds=calibrated.quarantine_seconds,
        )
    )
    remeasured = ue_burst_statistics(
        regenerated, calibrated.quarantine_seconds
    )
    assert remeasured.n_first_ues == pytest.approx(
        measured.n_first_ues, rel=0.5
    )
