"""Tests for UE burst reduction and DIMM-retirement bias removal."""

import numpy as np
import pytest

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind, EventRecord
from repro.telemetry.reduction import (
    prepare_log,
    reduce_ue_bursts,
    remove_retirement_bias,
)
from repro.utils.timeutils import DAY, WEEK


def _ue(time, node=0, dimm=0):
    return EventRecord(time=time, node=node, dimm=dimm, kind=EventKind.UE)


class TestReduceUeBursts:
    def test_burst_keeps_only_first(self):
        log = ErrorLog.from_records([_ue(0.0), _ue(DAY), _ue(2 * DAY)])
        reduced = reduce_ue_bursts(log, WEEK)
        assert reduced.count_ues() == 1
        assert reduced.time[0] == 0.0

    def test_separate_bursts_kept(self):
        log = ErrorLog.from_records([_ue(0.0), _ue(WEEK + DAY)])
        reduced = reduce_ue_bursts(log, WEEK)
        assert reduced.count_ues() == 2

    def test_window_restarts_from_retained_ue(self):
        # UEs at 0, 6d, 12d: the 6d one is dropped, the 12d one is a new
        # burst because 12d - 0d >= 7d.
        log = ErrorLog.from_records([_ue(0.0), _ue(6 * DAY), _ue(12 * DAY)])
        reduced = reduce_ue_bursts(log, WEEK)
        assert reduced.count_ues() == 2

    def test_bursts_are_per_node(self):
        log = ErrorLog.from_records([_ue(0.0, node=0), _ue(DAY, node=1)])
        reduced = reduce_ue_bursts(log, WEEK)
        assert reduced.count_ues() == 2

    def test_non_ue_events_untouched(self):
        records = [
            _ue(0.0),
            _ue(DAY),
            EventRecord(time=2 * DAY, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
        ]
        reduced = reduce_ue_bursts(ErrorLog.from_records(records), WEEK)
        assert reduced.count_kind(EventKind.CE) == 1

    def test_empty_log(self):
        assert len(reduce_ue_bursts(ErrorLog.empty())) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            reduce_ue_bursts(ErrorLog.empty(), 0)

    def test_overtemp_counts_in_burst(self):
        records = [
            EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.OVERTEMP),
            _ue(DAY),
        ]
        reduced = reduce_ue_bursts(ErrorLog.from_records(records), WEEK)
        assert reduced.count_ues() == 1


class TestRetirementBias:
    def test_retired_dimm_events_removed(self):
        records = [
            EventRecord(time=1.0, node=0, dimm=3, kind=EventKind.CE, ce_count=1),
            EventRecord(time=2.0, node=0, dimm=3, kind=EventKind.RETIREMENT),
            EventRecord(time=3.0, node=0, dimm=4, kind=EventKind.CE, ce_count=1),
        ]
        filtered, retired = remove_retirement_bias(ErrorLog.from_records(records))
        assert retired.tolist() == [3]
        assert 3 not in filtered.dimm.tolist()
        assert 4 in filtered.dimm.tolist()

    def test_node_level_events_kept(self):
        records = [
            EventRecord(time=1.0, node=0, dimm=3, kind=EventKind.RETIREMENT),
            EventRecord(time=2.0, node=0, dimm=-1, kind=EventKind.BOOT),
        ]
        filtered, retired = remove_retirement_bias(ErrorLog.from_records(records))
        assert filtered.count_kind(EventKind.BOOT) == 1

    def test_no_retirements_is_identity(self):
        records = [EventRecord(time=1.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1)]
        log = ErrorLog.from_records(records)
        filtered, retired = remove_retirement_bias(log)
        assert retired.size == 0
        assert filtered == log


class TestPrepareLog:
    def test_reports_consistent_counts(self, raw_error_log, scenario):
        reduced, report = prepare_log(
            raw_error_log, scenario.evaluation.ue_burst_window_seconds
        )
        assert report.raw_ues == raw_error_log.count_ues()
        assert report.reduced_ues == reduced.count_ues()
        assert report.reduced_ues <= report.raw_ues
        assert report.removed_burst_ues >= 0

    def test_major_reduction_like_paper(self, reduction_report):
        # The paper reduces 333 raw UEs to 67 first-of-burst UEs (factor ~5);
        # the generator should produce a qualitatively similar reduction.
        assert reduction_report.raw_ues > 1.5 * reduction_report.reduced_ues

    def test_retired_dimms_absent_from_output(self, raw_error_log, scenario):
        reduced, report = prepare_log(
            raw_error_log, scenario.evaluation.ue_burst_window_seconds
        )
        retired = np.unique(
            raw_error_log.dimm[raw_error_log.kind == int(EventKind.RETIREMENT)]
        )
        assert not np.isin(reduced.dimm, retired[retired >= 0]).any()
