"""Tests for the fault-model configuration."""

import pytest

from repro.telemetry.fault_model import FaultModelConfig, FaultType
from repro.utils.timeutils import DAY


class TestDefaults:
    def test_default_config_is_valid(self):
        config = FaultModelConfig()
        assert 0 < config.faulty_dimm_fraction < 1
        assert config.n_ue_bursts > 0

    def test_fault_types_enumerated(self):
        assert {t.name for t in FaultType} == {
            "TRANSIENT", "ROW", "COLUMN", "BANK", "RANK"
        }


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("faulty_dimm_fraction", 1.5),
            ("silent_ue_fraction", -0.1),
            ("overtemp_fraction", 2.0),
            ("mean_ces_per_faulty_dimm", 0),
            ("quarantine_seconds", -1),
            ("ce_logging_limit", 0),
            ("n_ue_bursts", -1),
            ("ue_burst_repeat_mean", -0.5),
        ],
    )
    def test_rejects_invalid_values(self, field, value):
        with pytest.raises(ValueError):
            FaultModelConfig(**{field: value})


class TestScaledFor:
    def test_sets_ue_target(self):
        config = FaultModelConfig.scaled_for(
            n_dimms=1000, duration_seconds=180 * DAY, target_ues=25
        )
        assert config.n_ue_bursts == 25

    def test_ce_target_scales_per_dimm_mean(self):
        config = FaultModelConfig.scaled_for(
            n_dimms=1000, duration_seconds=180 * DAY, target_ues=25, target_ces=1_000_000
        )
        n_faulty = config.faulty_dimm_fraction * 1000
        assert config.mean_ces_per_faulty_dimm == pytest.approx(1_000_000 / n_faulty)

    def test_retired_dimm_count_proportional_to_paper(self):
        config = FaultModelConfig.scaled_for(
            n_dimms=25320, duration_seconds=2 * 365 * DAY, target_ues=67
        )
        assert config.n_retired_dimms == 51

    def test_small_cluster_retires_at_least_two(self):
        config = FaultModelConfig.scaled_for(
            n_dimms=100, duration_seconds=30 * DAY, target_ues=5
        )
        assert config.n_retired_dimms >= 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FaultModelConfig.scaled_for(n_dimms=0, duration_seconds=1, target_ues=1)
        with pytest.raises(ValueError):
            FaultModelConfig.scaled_for(n_dimms=10, duration_seconds=0, target_ues=1)
