"""Tests for mcelog-style serialisation."""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.mcelog import (
    format_full_log,
    format_mcelog,
    format_ue_log,
    iter_mcelog_records,
    parse_mcelog,
    parse_ue_log,
)
from repro.telemetry.records import EventKind, EventRecord

DATA_DIR = Path(__file__).parent / "data"


@pytest.fixture()
def sample_log():
    return ErrorLog.from_records(
        [
            EventRecord(time=1.5, node=3, dimm=12, kind=EventKind.CE, ce_count=7,
                        rank=1, bank=2, row=333, col=4, scrubber=True, manufacturer=0),
            EventRecord(time=2.0, node=3, dimm=12, kind=EventKind.UE_WARNING, manufacturer=0),
            EventRecord(time=3.0, node=3, dimm=12, kind=EventKind.UE, manufacturer=0),
            EventRecord(time=4.0, node=5, dimm=-1, kind=EventKind.BOOT),
            EventRecord(time=5.0, node=6, dimm=20, kind=EventKind.RETIREMENT, manufacturer=2),
            EventRecord(time=6.0, node=7, dimm=30, kind=EventKind.OVERTEMP, manufacturer=1),
        ]
    )


class TestFormatting:
    def test_mcelog_contains_only_ce_lines(self, sample_log):
        text = format_mcelog(sample_log)
        lines = [l for l in text.splitlines() if l]
        assert len(lines) == 1
        assert lines[0].startswith("CE ")
        assert "count=7" in lines[0]
        assert "scrubber=1" in lines[0]

    def test_ue_log_excludes_ce(self, sample_log):
        text = format_ue_log(sample_log)
        assert "CE " not in text
        assert "UE " in text
        assert "BOOT" in text
        assert "OVERTEMP" in text

    def test_empty_log(self):
        assert format_mcelog(ErrorLog.empty()) == ""
        assert format_ue_log(ErrorLog.empty()) == ""


class TestRoundTrip:
    def test_full_roundtrip(self, sample_log):
        text = format_full_log(sample_log)
        parsed = parse_mcelog(text)
        assert len(parsed) == len(sample_log)
        assert parsed.count_ues() == sample_log.count_ues()
        assert parsed.total_corrected_errors() == sample_log.total_corrected_errors()

    def test_ce_fields_preserved(self, sample_log):
        parsed = parse_mcelog(format_mcelog(sample_log))
        record = parsed.record(0)
        assert record.ce_count == 7
        assert record.rank == 1 and record.bank == 2
        assert record.row == 333 and record.col == 4
        assert record.scrubber is True
        assert record.manufacturer == 0

    def test_parse_skips_comments_and_blank_lines(self):
        text = "# header\n\nBOOT time=1.000 node=2\n"
        parsed = parse_ue_log(text)
        assert len(parsed) == 1
        assert parsed.record(0).kind == EventKind.BOOT

    def test_parse_accepts_iterable_of_lines(self):
        parsed = parse_mcelog(["CE time=1.000 node=0 dimm=1 count=2 rank=0 bank=0 row=1 col=1 scrubber=0"])
        assert parsed.total_corrected_errors() == 2

    def test_parse_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            parse_mcelog("WAT time=1.0 node=0")

    def test_parse_rejects_malformed_field(self):
        with pytest.raises(ValueError):
            parse_mcelog("BOOT time 1.0 node=0")

    def test_parse_rejects_missing_required_field(self):
        with pytest.raises(ValueError):
            parse_mcelog("BOOT node=0")

    def test_generated_log_roundtrips(self, reduced_error_log):
        subset = reduced_error_log.filter_time(0, reduced_error_log.time[-1] / 10)
        parsed = parse_mcelog(format_full_log(subset))
        assert len(parsed) == len(subset)
        assert parsed.count_ues() == subset.count_ues()

    def test_generated_log_roundtrips_bit_exact(self, reduced_error_log):
        subset = reduced_error_log.filter_time(0, reduced_error_log.time[-1] / 10)
        assert parse_mcelog(format_full_log(subset)) == subset


class TestHardening:
    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate field 'time'"):
            parse_mcelog("BOOT time=1.0 time=2.0 node=3")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative time"):
            parse_mcelog("BOOT time=-1.5 node=3")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative count"):
            parse_mcelog("CE time=1.0 node=3 dimm=4 count=-2")

    def test_errors_carry_1based_line_number(self):
        text = "# header comment\n\nBOOT time=1.0 node=2\nWAT time=2.0 node=2\n"
        with pytest.raises(ValueError, match=r"line 4: unknown event tag 'WAT'"):
            parse_mcelog(text)

    @pytest.mark.parametrize(
        "bad_line",
        [
            "BOOT node=2",                      # missing time
            "BOOT time=abc node=2",             # unparsable float
            "BOOT time=1.0 node=-4",            # EventRecord validation
            "CE time=1.0 node=2 count=0",       # CE needs ce_count >= 1
            "BOOT time=1.0 time=2.0 node=2",    # duplicate key
        ],
    )
    def test_every_value_error_is_line_numbered(self, bad_line):
        text = "BOOT time=0.5 node=1\n" + bad_line + "\n"
        with pytest.raises(ValueError, match=r"^line 2: "):
            parse_mcelog(text)

    def test_iter_records_is_lazy_and_respects_start_lineno(self):
        lines = iter(["BOOT time=1.0 node=2", "broken"])
        stream = iter_mcelog_records(lines, start_lineno=41)
        first = next(stream)
        assert first.kind == EventKind.BOOT
        with pytest.raises(ValueError, match="line 42"):
            next(stream)


def _records_to_log(records):
    return ErrorLog.from_records(records)


_times = st.floats(
    min_value=0.0, max_value=4.0e9, allow_nan=False, allow_infinity=False
)
_manufacturers = st.sampled_from([-1, 0, 1, 2])
_dimms = st.one_of(st.just(-1), st.integers(0, 4000))


@st.composite
def _event_records(draw):
    kind = draw(st.sampled_from(list(EventKind)))
    time = draw(_times)
    node = draw(st.integers(0, 5000))
    dimm = draw(_dimms)
    manufacturer = draw(_manufacturers)
    if kind == EventKind.CE:
        return EventRecord(
            time=time,
            node=node,
            dimm=dimm,
            kind=kind,
            ce_count=draw(st.integers(1, 10**6)),
            rank=draw(st.integers(-1, 7)),
            bank=draw(st.integers(-1, 15)),
            row=draw(st.integers(-1, 10**5)),
            col=draw(st.integers(-1, 10**4)),
            scrubber=draw(st.booleans()),
            manufacturer=manufacturer,
        )
    return EventRecord(
        time=time, node=node, dimm=dimm, kind=kind, manufacturer=manufacturer
    )


class TestPropertyRoundTrip:
    """format -> parse must be lossless for every field of every EventKind."""

    @settings(max_examples=200, deadline=None)
    @given(records=st.lists(_event_records(), min_size=1, max_size=30))
    def test_full_log_roundtrips_bit_exact(self, records):
        log = _records_to_log(records)
        assert parse_mcelog(format_full_log(log)) == log

    @settings(max_examples=200, deadline=None)
    @given(
        base=st.floats(
            min_value=0.0, max_value=1e8, allow_nan=False, allow_infinity=False
        ),
        delta=st.floats(min_value=1e-9, max_value=1e-3, exclude_min=False),
        kind=st.sampled_from([EventKind.UE, EventKind.BOOT, EventKind.OVERTEMP]),
    )
    def test_submillisecond_pairs_keep_order_and_identity(self, base, delta, kind):
        """The %.3f regression: close event pairs must not collapse or swap."""
        t0, t1 = base, base + delta
        if not t1 > t0:  # delta lost to float rounding at this magnitude
            return
        log = _records_to_log(
            [
                EventRecord(time=t0, node=1, kind=kind),
                EventRecord(time=t1, node=2, kind=kind),
            ]
        )
        parsed = parse_mcelog(format_full_log(log))
        assert parsed == log
        # from_records re-sorts by time: the sub-millisecond ordering must
        # survive the text round-trip exactly.
        assert parsed.time[0] == t0 and parsed.time[1] == t1
        assert list(parsed.node) == [1, 2]

    @pytest.mark.parametrize("kind", list(EventKind))
    @pytest.mark.parametrize("dimm", [-1, 17])
    @pytest.mark.parametrize("manufacturer", [-1, 2])
    def test_every_kind_tag_and_omission_path(self, kind, dimm, manufacturer):
        record = (
            EventRecord(
                time=123.000456, node=9, dimm=dimm, kind=kind, ce_count=3,
                rank=1, bank=2, row=10, col=11, scrubber=True,
                manufacturer=manufacturer,
            )
            if kind == EventKind.CE
            else EventRecord(
                time=123.000456, node=9, dimm=dimm, kind=kind,
                manufacturer=manufacturer,
            )
        )
        log = _records_to_log([record])
        text = format_full_log(log)
        if dimm < 0:
            assert "dimm=" not in text
        if manufacturer < 0:
            assert "manufacturer=" not in text
        assert parse_mcelog(text) == log


class TestRealShapedDump:
    """A tiny checked-in real-shaped combined dump, ingested end to end."""

    @pytest.fixture()
    def dump_log(self):
        with open(DATA_DIR / "real_shaped_dump.log") as handle:
            return parse_mcelog(handle)

    def test_counts(self, dump_log):
        assert len(dump_log) == 14
        assert dump_log.count_ues() == 3  # 2 UEs + 1 over-temperature
        assert dump_log.total_corrected_errors() == 1 + 3 + 2 + 40 + 6

    def test_submillisecond_ordering_preserved(self, dump_log):
        node = dump_log.filter_nodes([201])
        times = node.time
        assert np.all(np.diff(times) > 0)
        assert 86455.100244 in times and 86455.100245 in times

    def test_roundtrips_bit_exact(self, dump_log):
        assert parse_mcelog(format_full_log(dump_log)) == dump_log

    def test_feature_tracks_build_end_to_end(self, dump_log):
        from repro.core.features import FEATURE_INDEX, build_feature_tracks

        tracks = build_feature_tracks(dump_log)
        assert set(tracks) == {201, 202, 305}
        node = tracks[201]
        assert node.is_ue.sum() == 1  # the firmware UE terminates the node
        # The two sub-millisecond CE bursts merge into one decision step.
        last = node.features[-1]
        assert last[FEATURE_INDEX["ces_total"]] == 1 + 3 + 2 + 40
        assert last[FEATURE_INDEX["boots_total"]] == 2.0
