"""Tests for mcelog-style serialisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry.error_log import ErrorLog
from repro.telemetry.mcelog import (
    format_full_log,
    format_mcelog,
    format_ue_log,
    parse_mcelog,
    parse_ue_log,
)
from repro.telemetry.records import EventKind, EventRecord


@pytest.fixture()
def sample_log():
    return ErrorLog.from_records(
        [
            EventRecord(time=1.5, node=3, dimm=12, kind=EventKind.CE, ce_count=7,
                        rank=1, bank=2, row=333, col=4, scrubber=True, manufacturer=0),
            EventRecord(time=2.0, node=3, dimm=12, kind=EventKind.UE_WARNING, manufacturer=0),
            EventRecord(time=3.0, node=3, dimm=12, kind=EventKind.UE, manufacturer=0),
            EventRecord(time=4.0, node=5, dimm=-1, kind=EventKind.BOOT),
            EventRecord(time=5.0, node=6, dimm=20, kind=EventKind.RETIREMENT, manufacturer=2),
            EventRecord(time=6.0, node=7, dimm=30, kind=EventKind.OVERTEMP, manufacturer=1),
        ]
    )


class TestFormatting:
    def test_mcelog_contains_only_ce_lines(self, sample_log):
        text = format_mcelog(sample_log)
        lines = [l for l in text.splitlines() if l]
        assert len(lines) == 1
        assert lines[0].startswith("CE ")
        assert "count=7" in lines[0]
        assert "scrubber=1" in lines[0]

    def test_ue_log_excludes_ce(self, sample_log):
        text = format_ue_log(sample_log)
        assert "CE " not in text
        assert "UE " in text
        assert "BOOT" in text
        assert "OVERTEMP" in text

    def test_empty_log(self):
        assert format_mcelog(ErrorLog.empty()) == ""
        assert format_ue_log(ErrorLog.empty()) == ""


class TestRoundTrip:
    def test_full_roundtrip(self, sample_log):
        text = format_full_log(sample_log)
        parsed = parse_mcelog(text)
        assert len(parsed) == len(sample_log)
        assert parsed.count_ues() == sample_log.count_ues()
        assert parsed.total_corrected_errors() == sample_log.total_corrected_errors()

    def test_ce_fields_preserved(self, sample_log):
        parsed = parse_mcelog(format_mcelog(sample_log))
        record = parsed.record(0)
        assert record.ce_count == 7
        assert record.rank == 1 and record.bank == 2
        assert record.row == 333 and record.col == 4
        assert record.scrubber is True
        assert record.manufacturer == 0

    def test_parse_skips_comments_and_blank_lines(self):
        text = "# header\n\nBOOT time=1.000 node=2\n"
        parsed = parse_ue_log(text)
        assert len(parsed) == 1
        assert parsed.record(0).kind == EventKind.BOOT

    def test_parse_accepts_iterable_of_lines(self):
        parsed = parse_mcelog(["CE time=1.000 node=0 dimm=1 count=2 rank=0 bank=0 row=1 col=1 scrubber=0"])
        assert parsed.total_corrected_errors() == 2

    def test_parse_rejects_unknown_tag(self):
        with pytest.raises(ValueError):
            parse_mcelog("WAT time=1.0 node=0")

    def test_parse_rejects_malformed_field(self):
        with pytest.raises(ValueError):
            parse_mcelog("BOOT time 1.0 node=0")

    def test_parse_rejects_missing_required_field(self):
        with pytest.raises(ValueError):
            parse_mcelog("BOOT node=0")

    def test_generated_log_roundtrips(self, reduced_error_log):
        subset = reduced_error_log.filter_time(0, reduced_error_log.time[-1] / 10)
        parsed = parse_mcelog(format_full_log(subset))
        assert len(parsed) == len(subset)
        assert parsed.count_ues() == subset.count_ues()
