"""Tests for telemetry event records."""

import pytest

from repro.telemetry.records import MANUFACTURER_NAMES, EventKind, EventRecord


class TestEventKind:
    def test_ue_counts_as_ue(self):
        assert EventKind.UE.counts_as_ue

    def test_overtemp_counts_as_ue(self):
        # Critical over-temperature shuts the node down (Section 2.1.2).
        assert EventKind.OVERTEMP.counts_as_ue

    @pytest.mark.parametrize(
        "kind", [EventKind.CE, EventKind.UE_WARNING, EventKind.BOOT, EventKind.RETIREMENT]
    )
    def test_other_kinds_do_not(self, kind):
        assert not kind.counts_as_ue


class TestEventRecord:
    def test_basic_ce_record(self):
        record = EventRecord(
            time=10.0, node=3, dimm=24, kind=EventKind.CE, ce_count=5,
            rank=1, bank=2, row=100, col=7, scrubber=True, manufacturer=2,
        )
        assert record.ce_count == 5
        assert not record.is_ue
        assert record.manufacturer_name == "C"

    def test_ue_record_is_ue(self):
        record = EventRecord(time=1.0, node=0, dimm=0, kind=EventKind.UE)
        assert record.is_ue

    def test_unknown_manufacturer_name(self):
        record = EventRecord(time=1.0, node=0, kind=EventKind.BOOT)
        assert record.manufacturer_name == "?"

    def test_manufacturer_names_are_three_letters(self):
        assert MANUFACTURER_NAMES == ("A", "B", "C")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(time=-1.0, node=0, kind=EventKind.BOOT)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(time=1.0, node=-1, kind=EventKind.BOOT)

    def test_ce_without_count_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(time=1.0, node=0, dimm=0, kind=EventKind.CE, ce_count=0)

    def test_records_order_by_time(self):
        early = EventRecord(time=1.0, node=5, kind=EventKind.BOOT)
        late = EventRecord(time=2.0, node=0, kind=EventKind.BOOT)
        assert early < late
