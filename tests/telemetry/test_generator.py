"""Tests for the synthetic telemetry generator."""

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.fault_model import FaultModelConfig
from repro.telemetry.generator import TelemetryGenerator, generate_error_log
from repro.telemetry.records import EventKind
from repro.telemetry.reduction import reduce_ue_bursts
from repro.telemetry.topology import ClusterTopology
from repro.utils.timeutils import DAY


@pytest.fixture(scope="module")
def small_topology():
    return ClusterTopology(n_nodes=32, dimms_per_node=4)


@pytest.fixture(scope="module")
def generated(small_topology):
    config = FaultModelConfig.scaled_for(
        n_dimms=small_topology.n_dimms, duration_seconds=90 * DAY, target_ues=16
    )
    generator = TelemetryGenerator(
        small_topology, config, duration_seconds=90 * DAY, seed=3
    )
    return generator, generator.generate()


class TestGeneratorBasics:
    def test_returns_error_log(self, generated):
        _, log = generated
        assert isinstance(log, ErrorLog)
        assert len(log) > 0

    def test_times_within_duration(self, generated):
        _, log = generated
        assert log.time.min() >= 0
        assert log.time.max() <= 90 * DAY

    def test_nodes_within_topology(self, generated, small_topology):
        _, log = generated
        assert log.node.min() >= 0
        assert log.node.max() < small_topology.n_nodes

    def test_dimms_map_to_their_node(self, generated, small_topology):
        _, log = generated
        mask = log.dimm >= 0
        assert np.all(
            small_topology.dimm_node(log.dimm[mask]) == log.node[mask]
        )

    def test_reproducible(self, small_topology):
        config = FaultModelConfig.scaled_for(
            n_dimms=small_topology.n_dimms, duration_seconds=60 * DAY, target_ues=8
        )
        a = generate_error_log(small_topology, config, 60 * DAY, seed=9)
        b = generate_error_log(small_topology, config, 60 * DAY, seed=9)
        assert a == b

    def test_different_seeds_differ(self, small_topology):
        config = FaultModelConfig.scaled_for(
            n_dimms=small_topology.n_dimms, duration_seconds=60 * DAY, target_ues=8
        )
        a = generate_error_log(small_topology, config, 60 * DAY, seed=1)
        b = generate_error_log(small_topology, config, 60 * DAY, seed=2)
        assert a != b

    def test_rejects_non_positive_duration(self, small_topology):
        with pytest.raises(ValueError):
            TelemetryGenerator(small_topology, duration_seconds=0)


class TestGeneratedContent:
    def test_contains_all_event_kinds(self, generated):
        _, log = generated
        kinds = set(log.kind.tolist())
        assert int(EventKind.CE) in kinds
        assert int(EventKind.UE) in kinds
        assert int(EventKind.BOOT) in kinds
        assert int(EventKind.RETIREMENT) in kinds

    def test_ue_burst_count_near_target(self, generated):
        _, log = generated
        reduced = reduce_ue_bursts(log)
        n_first = reduced.count_ues()
        # Target 16 bursts; allow generous slack for the stochastic model.
        assert 8 <= n_first <= 26

    def test_ues_appear_in_bursts(self, generated):
        _, log = generated
        raw = log.count_ues()
        reduced = reduce_ue_bursts(log).count_ues()
        assert raw > reduced  # repeats exist and are filtered

    def test_ce_counts_positive(self, generated):
        _, log = generated
        ce = log.filter_kind(EventKind.CE)
        assert np.all(ce.ce_count >= 1)

    def test_ce_locations_valid(self, generated, small_topology):
        _, log = generated
        ce = log.filter_kind(EventKind.CE)
        assert np.all(ce.rank >= 0) and np.all(ce.rank < small_topology.ranks_per_dimm)
        assert np.all(ce.bank >= 0) and np.all(ce.bank < small_topology.banks_per_rank)

    def test_some_ues_have_ce_history(self, generated):
        generator, log = generated
        ue_mask = log.is_ue_mask
        ce_dimms = set(log.dimm[log.kind == int(EventKind.CE)].tolist())
        ue_dimms = set(log.dimm[ue_mask].tolist())
        assert ce_dimms & ue_dimms, "no UE struck a DIMM with CE history"

    def test_some_ues_are_silent(self, generated):
        _, log = generated
        ce_dimms = set(log.dimm[log.kind == int(EventKind.CE)].tolist())
        ue_dimms = set(log.dimm[log.is_ue_mask].tolist())
        assert ue_dimms - ce_dimms, "every UE had CE history (no silent UEs)"

    def test_manufacturers_assigned_to_dimm_events(self, generated):
        _, log = generated
        dimm_events = log.dimm >= 0
        assert np.all(log.manufacturer[dimm_events] >= 0)

    def test_quarantine_removes_non_ue_events_after_ue(self, generated):
        generator, log = generated
        quarantine = generator.config.quarantine_seconds
        ue_mask = log.is_ue_mask
        for node in np.unique(log.node[ue_mask]):
            node_mask = log.node == node
            first_ue = log.time[node_mask & ue_mask].min()
            in_window = (
                node_mask
                & ~ue_mask
                & (log.time > first_ue)
                & (log.time <= first_ue + quarantine)
                & (log.kind != int(EventKind.BOOT))
            )
            assert not in_window.any()


class TestScenarioPresets:
    @pytest.mark.parametrize("preset", ["small", "benchmark"])
    def test_presets_generate(self, preset):
        scenario = getattr(ScenarioConfig, preset)()
        log = generate_error_log(
            scenario.topology,
            scenario.fault_model,
            scenario.duration_seconds,
            seed=scenario.seed,
        )
        assert log.count_ues() > 0
        assert log.total_corrected_errors() > 100
