"""Shared fixtures for the test-suite.

Heavy artefacts (the synthetic logs, feature tracks and traces of the small
scenario) are session-scoped so the many tests that need realistic data do
not regenerate it.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Allow running the tests from a fresh checkout without installing the
# package (the offline environment lacks `wheel` for editable installs).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.config import ScenarioConfig
from repro.core.features import StateNormalizer, build_feature_tracks
from repro.telemetry.generator import TelemetryGenerator
from repro.telemetry.reduction import prepare_log
from repro.workload.generator import WorkloadGenerator
from repro.workload.sampling import JobSequenceSampler


def pytest_addoption(parser):
    """Options of the golden-result regression harness (tests/golden/)."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="re-record the golden ExperimentResult fingerprints instead of "
        "comparing against them (intentional result changes only)",
    )


@pytest.fixture(scope="session")
def scenario():
    """The small laptop-scale scenario used throughout the tests."""
    return ScenarioConfig.small(seed=7)


@pytest.fixture(scope="session")
def raw_error_log(scenario):
    """Raw synthetic error log (before preprocessing)."""
    generator = TelemetryGenerator(
        scenario.topology,
        scenario.fault_model,
        scenario.duration_seconds,
        seed=scenario.seed,
    )
    return generator.generate()


@pytest.fixture(scope="session")
def reduced_error_log(raw_error_log, scenario):
    """Error log after retirement-bias removal and UE burst reduction."""
    reduced, _ = prepare_log(
        raw_error_log, scenario.evaluation.ue_burst_window_seconds
    )
    return reduced


@pytest.fixture(scope="session")
def reduction_report(raw_error_log, scenario):
    _, report = prepare_log(
        raw_error_log, scenario.evaluation.ue_burst_window_seconds
    )
    return report


@pytest.fixture(scope="session")
def job_log(scenario):
    """Synthetic Slurm-like job log for the small scenario."""
    return WorkloadGenerator(
        scenario.workload,
        n_cluster_nodes=scenario.topology.n_nodes,
        duration_seconds=scenario.duration_seconds,
        seed=scenario.seed,
    ).generate()


@pytest.fixture(scope="session")
def job_sampler(job_log):
    return JobSequenceSampler(job_log, seed=11)


@pytest.fixture(scope="session")
def feature_tracks(reduced_error_log):
    """Per-node Table 1 feature tracks of the reduced log."""
    return build_feature_tracks(reduced_error_log)


@pytest.fixture(scope="session")
def normalizer():
    return StateNormalizer()


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
