"""Round-trip identity of the versioned ``to_dict`` / ``from_dict`` schema.

Every config/result dataclass of the public API must survive
``to_dict -> json -> from_dict`` unchanged — including a real JSON text
round-trip, because the artifact store persists these payloads to disk and
floats must come back to the identical IEEE-754 value.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import EvaluationConfig, ScenarioConfig
from repro.core.dqn import DQNConfig
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.cross_validation import TimeSeriesSplit
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.pipeline import ApproachResult, ExperimentConfig, ExperimentResult
from repro.evaluation.runner import PolicyEvaluation
from repro.evaluation.sweep import SweepResult, SweepSpec
from repro.serialization import (
    SCHEMA_VERSION,
    SchemaError,
    simple_from_dict,
    simple_to_dict,
    tag,
    untag,
)
from repro.telemetry.fault_model import FaultModelConfig
from repro.telemetry.reduction import ReductionReport
from repro.telemetry.topology import ClusterTopology
from repro.workload.generator import WorkloadConfig


def roundtrip(obj):
    """to_dict -> canonical JSON text -> from_dict."""
    data = json.loads(json.dumps(obj.to_dict(), sort_keys=True))
    return type(obj).from_dict(data)


def _policy_evaluation(name="Oracle", seed=0.0):
    return PolicyEvaluation(
        policy_name=name,
        costs=CostBreakdown(
            ue_cost=123.456 + seed,
            mitigation_cost=7.25,
            training_cost=0.125,
            n_ues=3,
            n_mitigations=11,
        ),
        confusion=ConfusionCounts(2, 1, 9, 100),
        n_traces=4,
        n_decision_points=57,
    )


def _experiment_result():
    splits = [
        TimeSeriesSplit(
            index=0,
            train_range=(0.0, 10.5),
            validation_range=(10.5, 14.0),
            test_range=(14.0, 20.0),
        ),
        TimeSeriesSplit(
            index=1,
            train_range=(0.0, 15.0),
            validation_range=(15.0, 20.0),
            test_range=(20.0, 40.0),
        ),
    ]
    approaches = {
        "Oracle": ApproachResult(
            name="Oracle",
            per_split=[_policy_evaluation("Oracle", 0.0), _policy_evaluation("Oracle", 1.0)],
        ),
        "Never-mitigate": ApproachResult(
            name="Never-mitigate", per_split=[_policy_evaluation("Never-mitigate")]
        ),
    }
    return ExperimentResult(
        scenario_name="small",
        mitigation_cost_node_hours=1 / 30.0,
        approaches=approaches,
        splits=splits,
        reduction_report=ReductionReport(333, 67, 266, 51, 12),
        n_test_events=4242,
        wallclock_seconds=12.75,
    )


# --------------------------------------------------------------------- #
# Property-style round trips over every serializable dataclass
# --------------------------------------------------------------------- #
FLAT_INSTANCES = [
    ClusterTopology(n_nodes=48, dimms_per_node=4,
                    manufacturer_shares=(0.26, 0.21, 0.53)),
    FaultModelConfig.scaled_for(n_dimms=192, duration_seconds=1e7, target_ues=36),
    WorkloadConfig(max_job_nodes=16, mean_job_duration_seconds=21600.0),
    EvaluationConfig(mitigation_cost_node_minutes=5.0, restartable=False),
    DQNConfig(hidden_sizes=(16, 8), epsilon_decay_steps=4000),
    CostBreakdown(ue_cost=1.5, mitigation_cost=2.25, training_cost=0.75,
                  n_ues=2, n_mitigations=7),
    ConfusionCounts(1, 2, 3, 4),
    ReductionReport(333, 67, 266, 51, 12),
    TimeSeriesSplit(index=3, train_range=(0.0, 7.5), validation_range=(7.5, 10.0),
                    test_range=(10.0, 20.0)),
]


@pytest.mark.parametrize(
    "instance", FLAT_INSTANCES, ids=[type(i).__name__ for i in FLAT_INSTANCES]
)
def test_flat_dataclass_roundtrip_identity(instance):
    rebuilt = roundtrip(instance)
    assert rebuilt == instance
    # Field-by-field equality including exact float identity.
    for field in dataclasses.fields(instance):
        assert getattr(rebuilt, field.name) == getattr(instance, field.name)


@pytest.mark.parametrize(
    "scenario",
    [ScenarioConfig.small(), ScenarioConfig.benchmark(),
     ScenarioConfig.small().with_mitigation_cost(10.0).with_manufacturer(1)],
    ids=["small", "benchmark", "modified"],
)
def test_scenario_config_roundtrip_identity(scenario):
    assert roundtrip(scenario) == scenario


@pytest.mark.parametrize(
    "config",
    [ExperimentConfig(), ExperimentConfig.fast(),
     ExperimentConfig.paper().with_overrides(n_workers=8, include_rl=False)],
    ids=["default", "fast", "paper-modified"],
)
def test_experiment_config_roundtrip_identity(config):
    assert roundtrip(config) == config


@pytest.mark.parametrize(
    "spec",
    [
        SweepSpec(base=ScenarioConfig.small()),
        SweepSpec(
            base=ScenarioConfig.small(),
            mitigation_costs=(2.0, 5.0, 10.0),
            restartable=(True, False),
            manufacturers=(None, 0, 1, 2),
            job_scales=(0.1, 1.0, 10.0),
            seeds=(7, 8),
        ),
    ],
    ids=["degenerate", "all-axes"],
)
def test_sweep_spec_roundtrip_identity(spec):
    rebuilt = roundtrip(spec)
    assert rebuilt == spec
    assert [p.label for p in rebuilt.points()] == [p.label for p in spec.points()]


def test_policy_evaluation_roundtrip_identity():
    evaluation = _policy_evaluation()
    assert roundtrip(evaluation) == evaluation


def test_approach_result_roundtrip_identity():
    approach = ApproachResult(
        name="RL", per_split=[_policy_evaluation("RL", 0.5), _policy_evaluation("RL")]
    )
    rebuilt = roundtrip(approach)
    assert rebuilt.name == approach.name
    assert rebuilt.per_split == approach.per_split
    assert rebuilt.total_costs == approach.total_costs


def test_experiment_result_roundtrip_identity():
    result = _experiment_result()
    rebuilt = roundtrip(result)
    assert rebuilt.scenario_name == result.scenario_name
    assert rebuilt.mitigation_cost_node_hours == result.mitigation_cost_node_hours
    assert rebuilt.splits == result.splits
    assert rebuilt.reduction_report == result.reduction_report
    assert rebuilt.n_test_events == result.n_test_events
    assert rebuilt.wallclock_seconds == result.wallclock_seconds
    assert set(rebuilt.approaches) == set(result.approaches)
    for name in result.approaches:
        assert rebuilt.approaches[name].per_split == result.approaches[name].per_split
    # Trained artifacts are documented as not serialized.
    assert rebuilt.final_rl_policy is None
    assert rebuilt.final_sc20_policy is None
    assert rebuilt.final_test_features is None


def test_experiment_result_json_roundtrip_is_byte_stable():
    result = _experiment_result()
    text = result.to_json()
    assert ExperimentResult.from_json(text).to_json() == text


def test_sweep_result_roundtrip_and_missing_point_rejected():
    spec = SweepSpec(base=ScenarioConfig.small(), restartable=(True, False))
    results = {
        point.label: _experiment_result() for point in spec.points()
    }
    sweep = SweepResult(
        spec=spec, points=spec.points(), results=results, wallclock_seconds=3.5
    )
    text = sweep.to_json()
    rebuilt = SweepResult.from_json(text)
    assert rebuilt.labels == sweep.labels
    assert rebuilt.to_json() == text  # diagnostics excluded -> stable bytes

    crippled = json.loads(text)
    del crippled["results"]["restart=off"]
    with pytest.raises(SchemaError, match="restart=off"):
        SweepResult.from_dict(crippled)


# --------------------------------------------------------------------- #
# Envelope validation
# --------------------------------------------------------------------- #
class TestEnvelope:
    def test_tag_carries_schema_and_kind(self):
        data = tag("thing", {"a": 1})
        assert data["schema"] == SCHEMA_VERSION
        assert data["kind"] == "thing"
        assert untag(data, "thing") == {"a": 1}

    def test_wrong_kind_rejected(self):
        with pytest.raises(SchemaError, match="expected kind"):
            untag(tag("thing", {}), "other")

    def test_newer_schema_rejected(self):
        data = tag("thing", {})
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="upgrade the library"):
            untag(data, "thing")

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError, match="mapping"):
            untag([1, 2, 3], "thing")

    def test_unknown_fields_rejected(self):
        data = simple_to_dict(ConfusionCounts(1, 2, 3, 4), "confusion_counts")
        data["bogus"] = 1
        with pytest.raises(SchemaError, match="bogus"):
            simple_from_dict(ConfusionCounts, data, "confusion_counts")

    def test_wrong_kind_in_concrete_from_dict(self):
        with pytest.raises(SchemaError):
            ScenarioConfig.from_dict(CostBreakdown().to_dict())
