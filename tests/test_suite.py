"""The declarative suite layer: schema UX, compilation, and execution.

Three families:

* **Schema errors** — every malformed suite must raise a one-line
  :class:`~repro.suite.SuiteError` naming the offending block/field,
  and ``python -m repro suite --validate`` must turn it into a non-zero
  exit with no traceback.
* **Compilation** — YAML blocks compile to exactly the
  :class:`~repro.evaluation.sweep.SweepSpec` the API would build.
* **Execution** — ``run_suite`` results are bit-identical
  (:func:`~repro.distributed.results_equivalent`) to a direct
  ``run_sweep`` of the hand-built spec, including through a store.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cli import main
from repro.config import ScenarioConfig
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.sweep import SweepSpec, run_sweep
from repro.suite import (
    Suite,
    SuiteError,
    load_suite,
    parse_suite,
    run_suite,
)
from repro.utils.timeutils import DAY

pytest.importorskip("yaml", reason="the suite layer needs PyYAML")


MINIMAL = """
scenarios:
  basic:
    preset: small
"""


# --------------------------------------------------------------------- #
# Schema-error UX
# --------------------------------------------------------------------- #
class TestSchemaErrors:
    BAD_SUITES = {
        "invalid-yaml": "a: [",
        "not-a-mapping": "[1, 2]",
        "empty": "",
        "unknown-top-key": "nope: 1\nscenarios: {a: {}}",
        "missing-scenarios": "suite: {name: x}",
        "no-blocks": "scenarios: {}",
        "unknown-block-key": "scenarios: {a: {axis: {}}}",
        "bad-preset": "scenarios: {a: {preset: huge}}",
        "bad-seed": "scenarios: {a: {seed: 1.5}}",
        "unknown-axis": "scenarios: {a: {axes: {costs: [1]}}}",
        "empty-axis": "scenarios: {a: {axes: {mitigation_costs: []}}}",
        "bad-cost": "scenarios: {a: {axes: {mitigation_costs: [two]}}}",
        "bad-seed-axis": "scenarios: {a: {axes: {seeds: [1.5]}}}",
        "bad-restartable": "scenarios: {a: {axes: {restartable: [maybe]}}}",
        "bad-manufacturer": "scenarios: {a: {axes: {manufacturers: [Z]}}}",
        "unknown-fault-field": "scenarios: {a: {fault_model: {nope: 1}}}",
        "bad-fault-value": (
            "scenarios: {a: {fault_model: {correlated_bursts: -1}}}"
        ),
        "unknown-workload-field": "scenarios: {a: {workload: {nope: 1}}}",
        "bad-workload-value": (
            "scenarios: {a: {workload: {submit_pattern: hourly}}}"
        ),
        "segments-not-list": "scenarios: {a: {segments: {}}}",
        "segment-missing-key": "scenarios: {a: {segments: [{name: s}]}}",
        "segment-unknown-key": (
            "scenarios: {a: {segments: "
            "[{name: s, n_nodes: 48, manufacturer: 0, nope: 1}]}}"
        ),
        "segments-wrong-total": (
            "scenarios: {a: {segments: "
            "[{name: s, n_nodes: 3, manufacturer: 0}]}}"
        ),
        "unknown-experiment-field": (
            "scenarios: {a: {experiment: {whatever: 1}}}"
        ),
        "forbidden-experiment-field": (
            "scenarios: {a: {experiment: {rl_base_config: {}}}}"
        ),
        "bad-source-scheme": "scenarios: {a: {source: 'file:/x'}}",
        "missing-source-file": "scenarios: {a: {source: 'mcelog:/nope.log'}}",
        "defaults-with-axes": (
            "defaults: {axes: {seeds: [1]}}\nscenarios: {a: {}}"
        ),
    }

    @pytest.mark.parametrize("label", sorted(BAD_SUITES))
    def test_one_line_suite_error(self, label):
        with pytest.raises(SuiteError) as excinfo:
            parse_suite(self.BAD_SUITES[label])
        message = str(excinfo.value)
        assert "\n" not in message, f"multi-line error for {label}: {message!r}"
        assert message  # never empty

    def test_error_names_the_block(self):
        with pytest.raises(SuiteError, match="scenario 'fig9'"):
            parse_suite("scenarios: {fig9: {axes: {mitigation_costs: []}}}")

    def test_error_names_the_field(self):
        with pytest.raises(SuiteError, match="correlated_bursts"):
            parse_suite(self.BAD_SUITES["bad-fault-value"])

    def test_unknown_key_error_lists_valid_keys(self):
        with pytest.raises(SuiteError, match="valid keys: .*axes"):
            parse_suite(self.BAD_SUITES["unknown-block-key"])

    def test_duplicate_axis_labels_rejected(self):
        with pytest.raises(SuiteError, match="scenario 'a'"):
            parse_suite("scenarios: {a: {axes: {mitigation_costs: [2, 2]}}}")

    def test_load_suite_prefixes_the_path(self, tmp_path):
        path = tmp_path / "broken.yaml"
        path.write_text("scenarios: {a: {preset: huge}}")
        with pytest.raises(SuiteError, match=str(path)):
            load_suite(str(path))

    def test_missing_file_is_a_suite_error(self, tmp_path):
        with pytest.raises(SuiteError, match="cannot read suite file"):
            load_suite(str(tmp_path / "nope.yaml"))


class TestValidateCli:
    """``repro suite --validate`` exits non-zero on schema errors."""

    def test_valid_suite_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.yaml"
        path.write_text(MINIMAL)
        assert main(["suite", str(path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "basic" in out

    def test_schema_error_exits_nonzero_with_one_line(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("scenarios: {a: {axes: {mitigation_costs: [two]}}}")
        assert main(["suite", str(path), "--validate"]) == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error:")
        assert "\n" not in err
        assert "Traceback" not in err

    def test_example_suite_validates(self, capsys):
        from pathlib import Path

        example = (
            Path(__file__).parent.parent / "examples" / "paper_suite.yaml"
        )
        assert main(["suite", str(example), "--validate"]) == 0
        assert "fig3-cost-restart" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------- #
class TestCompilation:
    def test_axes_compile_to_the_hand_built_spec(self):
        suite = parse_suite(
            """
            scenarios:
              grid:
                preset: small
                seed: 5
                duration_days: 45
                axes:
                  mitigation_costs: [2, 10]
                  restartable: [on, off]
                  manufacturers: [all, A]
                  job_scales: [0.5, 2.0]
                  seeds: [1, 2]
            """
        )
        expected = SweepSpec(
            base=replace(
                ScenarioConfig.small(seed=5).with_duration(45 * DAY),
                name="grid",
            ),
            mitigation_costs=(2.0, 10.0),
            restartable=(True, False),
            manufacturers=(None, 0),
            job_scales=(0.5, 2.0),
            seeds=(1, 2),
        )
        spec = suite.entry("grid").spec
        assert spec == expected
        assert [p.label for p in spec.points()] == [
            p.label for p in expected.points()
        ]

    def test_defaults_merge_shallow_and_nested(self):
        suite = parse_suite(
            """
            defaults:
              preset: small
              seed: 3
              experiment: {include_rl: false, n_workers: 2}
            scenarios:
              plain: {}
              tweaked:
                seed: 9
                experiment: {include_oracle: false}
            """
        )
        plain = suite.entry("plain")
        tweaked = suite.entry("tweaked")
        assert plain.spec.base.seed == 3
        assert tweaked.spec.base.seed == 9
        # The block's experiment mapping merges with the defaults' one.
        assert tweaked.experiment_overrides == {
            "include_rl": False,
            "n_workers": 2,
            "include_oracle": False,
        }

    def test_fault_workload_segment_blocks_reach_the_scenario(self):
        suite = parse_suite(
            """
            scenarios:
              kinds:
                fault_model: {correlated_bursts: 2, correlated_burst_width: 3}
                workload: {submit_pattern: diurnal, scheduler: backfill}
                segments:
                  - {name: old, n_nodes: 24, manufacturer: 0, policy: always}
                  - {name: new, n_nodes: 24, manufacturer: 2}
                experiment: {include_fleet_mix: true}
            """
        )
        base = suite.entry("kinds").spec.base
        assert base.fault_model.correlated_bursts == 2
        assert base.workload.submit_pattern == "diurnal"
        assert base.workload.scheduler == "backfill"
        assert [seg.name for seg in base.topology.segments] == ["old", "new"]
        assert base.topology.segments[0].policy == "always"
        assert suite.entry("kinds").experiment_overrides == {
            "include_fleet_mix": True
        }

    def test_mcelog_source_resolves_relative_to_the_suite_file(self, tmp_path):
        trace = tmp_path / "trace.mcelog"
        trace.write_text("")
        path = tmp_path / "s.yaml"
        path.write_text(
            "scenarios:\n  real:\n    source: mcelog:trace.mcelog\n"
        )
        suite = load_suite(str(path))
        assert suite.entry("real").source == str(trace)

    def test_round_trips_preserve_new_config_fields(self):
        """Every suite-reachable field survives the versioned round-trip."""
        suite = parse_suite(
            """
            scenarios:
              kinds:
                fault_model: {correlated_bursts: 2}
                workload: {submit_pattern: diurnal, scheduler: backfill}
                segments:
                  - {name: old, n_nodes: 24, manufacturer: 0, ue_scale: 2.0}
                  - {name: new, n_nodes: 24, manufacturer: 2, policy: sc20}
            """
        )
        base = suite.entry("kinds").spec.base
        assert ScenarioConfig.from_dict(base.to_dict()) == base

    def test_unknown_entry_name(self):
        suite = parse_suite(MINIMAL)
        assert isinstance(suite, Suite)
        with pytest.raises(SuiteError, match="'basic'"):
            suite.entry("nope")


# --------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------- #
def _cheap_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig.fast().with_overrides(
        include_rl=False, charge_training_time=False, **overrides
    )


class TestExecution:
    def test_suite_run_is_bit_identical_to_direct_sweep(self, tmp_path):
        from repro.distributed import results_equivalent
        from repro.store import ArtifactStore

        suite = parse_suite(
            """
            scenarios:
              two-costs:
                preset: small
                duration_days: 45
                axes: {mitigation_costs: [2, 10]}
            """
        )
        config = _cheap_config()
        store = ArtifactStore(tmp_path / "runs")
        via_suite = run_suite(suite, config, store=store)["two-costs"]

        direct = run_sweep(
            SweepSpec(
                base=replace(
                    ScenarioConfig.small().with_duration(45 * DAY),
                    name="two-costs",
                ),
                mitigation_costs=(2.0, 10.0),
            ),
            config,
        )
        assert results_equivalent(via_suite, direct)

    def test_distributed_flags_reject_sourced_blocks(self, tmp_path):
        from repro.store import ArtifactStore

        trace = tmp_path / "t.mcelog"
        trace.write_text("")
        suite = parse_suite(
            f"scenarios:\n  real:\n    source: mcelog:{trace}\n",
            base_dir=str(tmp_path),
        )
        store = ArtifactStore(tmp_path / "runs")
        with pytest.raises(SuiteError, match="'real'"):
            run_suite(suite, _cheap_config(), store=store, shard=(0, 2))

    def test_distributed_flags_require_a_store(self):
        suite = parse_suite(MINIMAL)
        with pytest.raises(SuiteError, match="store"):
            run_suite(suite, _cheap_config(), shard=(0, 2))

    def test_only_selects_a_single_block(self, monkeypatch):
        calls = []

        def fake_run_sweep(spec, config, error_log=None, store=None):
            calls.append(spec.base.name)
            return None

        monkeypatch.setattr("repro.suite.run_sweep", fake_run_sweep)
        suite = parse_suite(
            "scenarios:\n  a: {preset: small}\n  b: {preset: small}\n"
        )
        run_suite(suite, _cheap_config(), only="b")
        assert calls == ["b"]

    def test_per_block_experiment_overrides_apply(self, monkeypatch):
        seen = {}

        def fake_run_sweep(spec, config, error_log=None, store=None):
            seen[spec.base.name] = config
            return None

        monkeypatch.setattr("repro.suite.run_sweep", fake_run_sweep)
        suite = parse_suite(
            """
            scenarios:
              flag: {experiment: {include_fleet_mix: true}}
              plain: {}
            """
        )
        base = _cheap_config()
        run_suite(suite, base)
        assert seen["flag"].include_fleet_mix is True
        assert seen["plain"] == base

    def test_sourced_block_passes_the_parsed_log(self, tmp_path, monkeypatch):
        from repro.telemetry.generator import TelemetryGenerator
        from repro.telemetry.mcelog import format_full_log

        scenario = ScenarioConfig.small(seed=13).with_duration(30 * DAY)
        log = TelemetryGenerator(
            scenario.topology,
            scenario.fault_model,
            seed=scenario.seed,
            duration_seconds=scenario.duration_seconds,
        ).generate()
        trace = tmp_path / "t.mcelog"
        trace.write_text(format_full_log(log))

        captured = {}

        def fake_run_sweep(spec, config, error_log=None, store=None):
            captured["log"] = error_log
            return None

        monkeypatch.setattr("repro.suite.run_sweep", fake_run_sweep)
        suite = parse_suite(
            f"scenarios:\n  real:\n    source: mcelog:{trace}\n"
        )
        run_suite(suite, _cheap_config())
        assert captured["log"] is not None
        assert len(captured["log"]) == len(log)
