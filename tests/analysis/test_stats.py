"""Tests for the quantitative log analysis (generator validation)."""

import numpy as np
import pytest

from repro.analysis.stats import (
    class_imbalance_ratio,
    manufacturer_breakdown,
    silent_ue_fraction,
    summarize_log,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind, EventRecord
from repro.utils.timeutils import DAY, HOUR


class TestSilentUeFraction:
    def test_ue_with_recent_event_is_not_silent(self):
        log = ErrorLog.from_records(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=HOUR, node=0, dimm=0, kind=EventKind.UE),
            ]
        )
        assert silent_ue_fraction(log) == 0.0

    def test_ue_without_preceding_event_is_silent(self):
        log = ErrorLog.from_records(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=3 * DAY, node=0, dimm=0, kind=EventKind.UE),
            ]
        )
        assert silent_ue_fraction(log, window_seconds=DAY) == 1.0

    def test_events_on_other_nodes_do_not_count(self):
        log = ErrorLog.from_records(
            [
                EventRecord(time=HOUR, node=1, dimm=4, kind=EventKind.CE, ce_count=1),
                EventRecord(time=2 * HOUR, node=0, dimm=0, kind=EventKind.UE),
            ]
        )
        assert silent_ue_fraction(log) == 1.0

    def test_no_ues(self):
        log = ErrorLog.from_records(
            [EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1)]
        )
        assert silent_ue_fraction(log) == 0.0


class TestClassImbalance:
    def test_ratio(self):
        records = [
            EventRecord(time=i * HOUR, node=0, dimm=0, kind=EventKind.CE, ce_count=1)
            for i in range(9)
        ] + [EventRecord(time=100 * HOUR, node=0, dimm=0, kind=EventKind.UE)]
        assert class_imbalance_ratio(ErrorLog.from_records(records)) == pytest.approx(10.0)

    def test_infinite_without_ues(self):
        log = ErrorLog.from_records(
            [EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1)]
        )
        assert class_imbalance_ratio(log) == float("inf")


class TestManufacturerBreakdown:
    def test_per_manufacturer_counts(self, reduced_error_log):
        breakdown = manufacturer_breakdown(reduced_error_log)
        assert set(breakdown) <= {"A", "B", "C"}
        total_ues = sum(v["uncorrected_errors"] for v in breakdown.values())
        assert total_ues <= reduced_error_log.count_ues()


class TestSummarizeLog:
    def test_summary_consistency(self, reduced_error_log):
        summary = summarize_log(reduced_error_log)
        assert summary.n_events == len(reduced_error_log)
        assert summary.n_uncorrected_errors == reduced_error_log.count_ues()
        assert summary.n_merged_events <= summary.n_events
        assert 0.0 <= summary.silent_ue_fraction <= 1.0
        assert summary.class_imbalance_orders_of_magnitude > 0

    def test_paper_like_properties(self, reduced_error_log):
        summary = summarize_log(reduced_error_log)
        # The generator must produce the two properties the paper calls out:
        # strong class imbalance and a minority-but-nonzero fraction of UEs
        # with no telemetry in the preceding day.
        assert summary.class_imbalance_orders_of_magnitude >= 1.0
        assert 0.05 <= summary.silent_ue_fraction <= 0.7
