"""Tests for the burstiness analysis."""

import numpy as np
import pytest

from repro.analysis.burst import (
    burstiness_coefficient,
    inter_arrival_times,
    ue_burst_statistics,
)
from repro.telemetry.error_log import ErrorLog
from repro.telemetry.records import EventKind, EventRecord
from repro.utils.timeutils import DAY, HOUR, WEEK


class TestInterArrivalTimes:
    def test_per_node_gaps(self):
        log = ErrorLog.from_records(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=10.0, node=0, dimm=0, kind=EventKind.CE, ce_count=1),
                EventRecord(time=5.0, node=1, dimm=4, kind=EventKind.CE, ce_count=1),
            ]
        )
        gaps = inter_arrival_times(log)
        assert gaps.tolist() == [10.0]

    def test_empty_log(self):
        assert inter_arrival_times(ErrorLog.empty()).size == 0


class TestBurstinessCoefficient:
    def test_regular_process_has_low_coefficient(self):
        assert burstiness_coefficient(np.full(100, 10.0)) == pytest.approx(0.0)

    def test_bursty_process_has_high_coefficient(self):
        gaps = np.concatenate([np.full(99, 1.0), [10_000.0]])
        assert burstiness_coefficient(gaps) > 2.0

    def test_degenerate_inputs(self):
        assert burstiness_coefficient(np.array([])) == 0.0
        assert burstiness_coefficient(np.array([5.0])) == 0.0

    def test_generated_ce_arrivals_are_bursty(self, reduced_error_log):
        ce_mask = reduced_error_log.kind == int(EventKind.CE)
        gaps = inter_arrival_times(reduced_error_log, ce_mask)
        assert burstiness_coefficient(gaps) > 1.0


class TestUeBurstStatistics:
    def test_single_burst(self):
        log = ErrorLog.from_records(
            [
                EventRecord(time=0.0, node=0, dimm=0, kind=EventKind.UE),
                EventRecord(time=DAY, node=0, dimm=0, kind=EventKind.UE),
                EventRecord(time=2 * DAY, node=0, dimm=0, kind=EventKind.UE),
            ]
        )
        stats = ue_burst_statistics(log)
        assert stats.n_raw_ues == 3
        assert stats.n_first_ues == 1
        assert stats.mean_burst_size == pytest.approx(3.0)
        assert stats.reduction_factor == pytest.approx(3.0)

    def test_no_ues(self):
        stats = ue_burst_statistics(ErrorLog.empty())
        assert stats.n_raw_ues == 0
        assert stats.reduction_factor == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ue_burst_statistics(ErrorLog.empty(), window_seconds=0)

    def test_generated_log_bursts(self, raw_error_log):
        stats = ue_burst_statistics(raw_error_log, WEEK)
        # The generator emits several follow-up UEs per burst (paper: ~5x).
        assert stats.reduction_factor > 1.5
        assert stats.max_burst_size >= 2
