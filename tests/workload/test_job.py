"""Tests for job records and the job log container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.timeutils import HOUR
from repro.workload.job import JobLog, JobRecord


class TestJobRecord:
    def test_duration_and_node_hours(self):
        job = JobRecord(submit=0.0, start=100.0, end=100.0 + 2 * HOUR, n_nodes=8)
        assert job.duration == pytest.approx(2 * HOUR)
        assert job.node_hours == pytest.approx(16.0)

    def test_rejects_start_before_submit(self):
        with pytest.raises(ValueError):
            JobRecord(submit=100.0, start=50.0, end=200.0, n_nodes=1)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            JobRecord(submit=0.0, start=100.0, end=50.0, n_nodes=1)

    def test_rejects_non_positive_nodes(self):
        with pytest.raises(ValueError):
            JobRecord(submit=0.0, start=0.0, end=1.0, n_nodes=0)

    def test_fractional_nodes_allowed_for_scaling(self):
        job = JobRecord(submit=0.0, start=0.0, end=HOUR, n_nodes=0.1)
        assert job.node_hours == pytest.approx(0.1)


class TestJobLog:
    def _log(self):
        return JobLog.from_records(
            [
                JobRecord(submit=0.0, start=50.0, end=50.0 + HOUR, n_nodes=4, job_id=1),
                JobRecord(submit=0.0, start=0.0, end=2 * HOUR, n_nodes=2, job_id=0),
                JobRecord(submit=10.0, start=3 * HOUR, end=5 * HOUR, n_nodes=8, job_id=2),
            ]
        )

    def test_sorted_by_start(self):
        log = self._log()
        assert np.all(np.diff(log.start) >= 0)

    def test_roundtrip_records(self):
        log = self._log()
        rebuilt = JobLog.from_records(log.to_records())
        assert rebuilt == log

    def test_total_node_hours(self):
        log = self._log()
        assert log.total_node_hours() == pytest.approx(2 * 2 + 4 * 1 + 8 * 2)

    def test_utilization(self):
        log = self._log()
        util = log.utilization(n_cluster_nodes=8, duration_seconds=5 * HOUR)
        assert util == pytest.approx((4 + 4 + 16) / 40.0)

    def test_filter_time_overlap_semantics(self):
        log = self._log()
        overlapping = log.filter_time(HOUR + 1, 2 * HOUR - 1)
        # job 0 runs 0..2h and job 1 runs 50s..1h50s: both overlap the window.
        assert len(overlapping) == 2

    def test_select_by_mask(self):
        log = self._log()
        big = log.select(log.n_nodes >= 4)
        assert len(big) == 2

    def test_empty(self):
        log = JobLog.empty()
        assert len(log) == 0
        assert log.total_node_hours() == 0.0
        assert log.utilization(4, HOUR) == 0.0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            JobLog(job_id=[1], submit=[0.0, 1.0], start=[0.0], end=[1.0], n_nodes=[1])

    def test_inconsistent_times_rejected(self):
        with pytest.raises(ValueError):
            JobLog(job_id=[1], submit=[0.0], start=[1.0], end=[0.5], n_nodes=[1])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=1, max_value=1e6),
                st.integers(min_value=1, max_value=512),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_node_hours_match_sum(self, jobs):
        records = [
            JobRecord(submit=s, start=s, end=s + d, n_nodes=n, job_id=i)
            for i, (s, d, n) in enumerate(jobs)
        ]
        log = JobLog.from_records(records)
        assert log.total_node_hours() == pytest.approx(
            sum(r.node_hours for r in records), rel=1e-9
        )
