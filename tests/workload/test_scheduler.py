"""Tests for the FCFS cluster scheduler."""

import numpy as np
import pytest

from repro.utils.timeutils import HOUR
from repro.workload.scheduler import ClusterScheduler


class TestSchedule:
    def test_job_starts_at_submit_when_cluster_free(self):
        scheduler = ClusterScheduler(n_nodes=8)
        job = scheduler.schedule(submit=100.0, n_nodes=4, duration=HOUR)
        assert job.record.start == pytest.approx(100.0)
        assert job.n_nodes == 4

    def test_job_waits_when_cluster_busy(self):
        scheduler = ClusterScheduler(n_nodes=4)
        first = scheduler.schedule(submit=0.0, n_nodes=4, duration=HOUR)
        second = scheduler.schedule(submit=10.0, n_nodes=2, duration=HOUR)
        assert second.record.start == pytest.approx(first.record.end)

    def test_small_job_backfills_free_nodes(self):
        scheduler = ClusterScheduler(n_nodes=4)
        scheduler.schedule(submit=0.0, n_nodes=2, duration=HOUR)
        second = scheduler.schedule(submit=0.0, n_nodes=2, duration=HOUR)
        # Two free nodes remain, so the second job does not wait.
        assert second.record.start == pytest.approx(0.0)

    def test_allocated_nodes_do_not_overlap_in_time(self):
        scheduler = ClusterScheduler(n_nodes=6)
        jobs = scheduler.schedule_all(
            submits=[0.0, 0.0, 0.0, 0.0],
            n_nodes=[3, 3, 3, 3],
            durations=[HOUR, HOUR, HOUR, HOUR],
        )
        intervals = {}
        for job in jobs:
            for node in job.nodes:
                intervals.setdefault(node, []).append(
                    (job.record.start, job.record.end)
                )
        for spans in intervals.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9

    def test_rejects_oversized_job(self):
        scheduler = ClusterScheduler(n_nodes=2)
        with pytest.raises(ValueError):
            scheduler.schedule(submit=0.0, n_nodes=3, duration=HOUR)

    def test_rejects_non_positive_duration(self):
        scheduler = ClusterScheduler(n_nodes=2)
        with pytest.raises(ValueError):
            scheduler.schedule(submit=0.0, n_nodes=1, duration=0.0)

    def test_reset(self):
        scheduler = ClusterScheduler(n_nodes=2)
        scheduler.schedule(submit=0.0, n_nodes=2, duration=HOUR)
        scheduler.reset()
        job = scheduler.schedule(submit=0.0, n_nodes=2, duration=HOUR)
        assert job.record.start == pytest.approx(0.0)

    def test_schedule_all_requires_aligned_arrays(self):
        scheduler = ClusterScheduler(n_nodes=2)
        with pytest.raises(ValueError):
            scheduler.schedule_all([0.0], [1, 1], [HOUR])

    def test_to_job_log(self):
        scheduler = ClusterScheduler(n_nodes=4)
        jobs = scheduler.schedule_all(
            submits=[0.0, 5.0], n_nodes=[2, 2], durations=[HOUR, HOUR]
        )
        log = ClusterScheduler.to_job_log(jobs)
        assert len(log) == 2
        assert log.total_node_hours() == pytest.approx(4.0)
