"""Tests for sacct-style serialisation."""

import pytest

from repro.workload.job import JobLog, JobRecord
from repro.workload.slurm import format_sacct, parse_sacct


@pytest.fixture()
def log():
    return JobLog.from_records(
        [
            JobRecord(submit=0.0, start=10.0, end=3610.0, n_nodes=16, job_id=100),
            JobRecord(submit=5.0, start=20.0, end=7220.0, n_nodes=1, job_id=101),
        ]
    )


class TestFormat:
    def test_header_present(self, log):
        text = format_sacct(log)
        assert text.splitlines()[0] == "JobID|Submit|Start|End|NNodes"

    def test_header_optional(self, log):
        text = format_sacct(log, include_header=False)
        assert not text.startswith("JobID")
        assert len(text.splitlines()) == 2

    def test_empty_log(self):
        assert format_sacct(JobLog.empty(), include_header=False) == ""


class TestParse:
    def test_roundtrip(self, log):
        parsed = parse_sacct(format_sacct(log))
        assert parsed == log

    def test_parse_skips_comments_and_blanks(self):
        text = "# comment\n\nJobID|Submit|Start|End|NNodes\n7|0.000|1.000|2.000|4\n"
        parsed = parse_sacct(text)
        assert len(parsed) == 1
        assert parsed.record(0).n_nodes == 4

    def test_parse_fractional_nodes(self):
        parsed = parse_sacct("3|0.000|0.000|100.000|0.5")
        assert parsed.record(0).n_nodes == pytest.approx(0.5)

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_sacct("1|2|3")

    def test_parse_accepts_iterable(self, log):
        lines = format_sacct(log).splitlines()
        parsed = parse_sacct(lines)
        assert parsed == log

    def test_generated_log_roundtrips(self, job_log):
        subset = job_log.select(job_log.start < job_log.start[0] + 86400.0)
        parsed = parse_sacct(format_sacct(subset))
        assert parsed == subset
