"""Job-mix stress shapes: diurnal submissions and backfill scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.timeutils import DAY, HOUR
from repro.workload.generator import WorkloadConfig, WorkloadGenerator
from repro.workload.scheduler import BackfillScheduler, ClusterScheduler


def _generate(config: WorkloadConfig, seed: int = 5, days: int = 60):
    return WorkloadGenerator(
        config, n_cluster_nodes=48, duration_seconds=days * DAY, seed=seed
    ).generate()


class TestConfigValidation:
    def test_defaults_are_the_legacy_shape(self):
        config = WorkloadConfig()
        assert config.submit_pattern == "uniform"
        assert config.scheduler == "fcfs"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("submit_pattern", "hourly"),
            ("scheduler", "sjf"),
            ("diurnal_amplitude", 1.5),
            ("diurnal_period_seconds", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            WorkloadConfig(**{field: value})

    def test_new_fields_round_trip(self):
        config = WorkloadConfig(
            submit_pattern="diurnal",
            diurnal_amplitude=0.8,
            diurnal_period_seconds=12 * HOUR,
            scheduler="backfill",
        )
        assert WorkloadConfig.from_dict(config.to_dict()) == config

    def test_old_payloads_still_load(self):
        payload = WorkloadConfig().to_dict()
        for field in (
            "submit_pattern",
            "diurnal_amplitude",
            "diurnal_period_seconds",
            "scheduler",
        ):
            del payload[field]
        assert WorkloadConfig.from_dict(payload) == WorkloadConfig()


class TestDiurnalPattern:
    def test_uniform_default_is_bit_identical_to_before(self):
        base = _generate(WorkloadConfig())
        explicit = _generate(
            WorkloadConfig(submit_pattern="uniform", diurnal_amplitude=0.9)
        )
        np.testing.assert_array_equal(base.submit, explicit.submit)
        np.testing.assert_array_equal(base.start, explicit.start)

    def test_zero_amplitude_diurnal_matches_uniform(self):
        uniform = _generate(WorkloadConfig())
        flat = _generate(
            WorkloadConfig(submit_pattern="diurnal", diurnal_amplitude=0.0)
        )
        np.testing.assert_array_equal(uniform.submit, flat.submit)

    def test_diurnal_concentrates_submissions_within_the_day(self):
        diurnal = _generate(
            WorkloadConfig(submit_pattern="diurnal", diurnal_amplitude=0.9)
        )
        # Ignore the zeroed standing-backlog prefix.
        submits = diurnal.submit[diurnal.submit > 0.0]
        phase = np.mod(submits, DAY)
        counts, _ = np.histogram(phase, bins=8, range=(0.0, DAY))
        # A strongly diurnal pattern piles jobs into peak hours: the busiest
        # phase bin must clearly dominate the quietest one.
        assert counts.max() > 1.5 * max(1, counts.min())

    def test_uniform_pattern_has_flat_phase_histogram(self):
        uniform = _generate(WorkloadConfig())
        submits = uniform.submit[uniform.submit > 0.0]
        phase = np.mod(submits, DAY)
        counts, _ = np.histogram(phase, bins=8, range=(0.0, DAY))
        assert counts.max() < 1.5 * counts.min()

    def test_diurnal_is_deterministic(self):
        config = WorkloadConfig(submit_pattern="diurnal", diurnal_amplitude=0.7)
        a, b = _generate(config), _generate(config)
        np.testing.assert_array_equal(a.submit, b.submit)
        np.testing.assert_array_equal(a.start, b.start)


class TestBackfillScheduler:
    def test_earliest_start_validates_width(self):
        scheduler = BackfillScheduler(n_nodes=4)
        with pytest.raises(ValueError):
            scheduler.earliest_start(0.0, 5)

    def test_small_job_backfills_into_the_gap(self):
        # 3 nodes; A occupies two of them, B wants the whole machine and
        # must wait, C (1 node, short) fits before B's reservation.
        submits = [0.0, 0.0, 1.0]
        n_nodes = [2, 3, 1]
        durations = [100.0, 50.0, 10.0]

        fcfs = ClusterScheduler(n_nodes=3).schedule_all(
            submits, n_nodes, durations
        )
        backfill = BackfillScheduler(n_nodes=3).schedule_all(
            submits, n_nodes, durations
        )

        def start_of(scheduled, submit, width):
            for job in scheduled:
                if (
                    job.record.submit == submit
                    and job.record.n_nodes == width
                ):
                    return job.record.start
            raise AssertionError("job not found")

        # FCFS makes C wait behind the machine-wide B.
        assert start_of(fcfs, 1.0, 1) == 150.0
        # Backfill slides C into the gap without delaying B's reservation.
        assert start_of(backfill, 1.0, 1) == 1.0
        assert start_of(backfill, 0.0, 3) == start_of(fcfs, 0.0, 3) == 100.0

    def test_backfilled_job_never_overruns_the_reservation(self):
        # The candidate ends exactly at the reservation: allowed.  One tick
        # longer: rejected (the head job would be delayed).
        for duration, expected_start in ((99.0, 1.0), (100.0, 150.0)):
            backfill = BackfillScheduler(n_nodes=3).schedule_all(
                [0.0, 0.0, 1.0], [2, 3, 1], [100.0, 50.0, duration]
            )
            starts = {
                (job.record.submit, job.record.n_nodes): job.record.start
                for job in backfill
            }
            assert starts[(1.0, 1.0)] == expected_start
            assert starts[(0.0, 3.0)] == 100.0  # head reservation held

    def test_backfill_depth_limits_the_scan(self):
        # With depth 1 only the first queued job may jump; the fitting job
        # sits at position 2 and must not be considered.
        submits = [0.0, 0.0, 1.0, 1.0]
        n_nodes = [2, 3, 3, 1]
        durations = [100.0, 50.0, 50.0, 10.0]
        shallow = BackfillScheduler(n_nodes=3, backfill_depth=1).schedule_all(
            submits, n_nodes, durations
        )
        deep = BackfillScheduler(n_nodes=3, backfill_depth=8).schedule_all(
            submits, n_nodes, durations
        )
        small_start = {
            (job.record.submit, job.record.n_nodes): job.record.start
            for job in deep
        }[(1.0, 1.0)]
        small_start_shallow = {
            (job.record.submit, job.record.n_nodes): job.record.start
            for job in shallow
        }[(1.0, 1.0)]
        assert small_start == 1.0
        assert small_start_shallow > 1.0

    def test_backfill_reduces_total_wait_on_a_random_mix(self):
        rng = np.random.default_rng(7)
        n = 200
        submits = np.sort(rng.uniform(0, 2000.0, n))
        n_nodes = rng.integers(1, 9, n)
        durations = rng.uniform(1.0, 60.0, n)
        fcfs = ClusterScheduler(n_nodes=8).schedule_all(
            submits, n_nodes, durations
        )
        backfill = BackfillScheduler(n_nodes=8).schedule_all(
            submits, n_nodes, durations
        )
        wait = lambda scheduled: sum(
            job.record.start - job.record.submit for job in scheduled
        )
        assert wait(backfill) <= wait(fcfs)

    def test_generator_dispatches_on_the_scheduler_field(self):
        fcfs = _generate(WorkloadConfig())
        backfill = _generate(WorkloadConfig(scheduler="backfill"))
        # Same submission stream (identical RNG consumption) ...
        n = min(len(fcfs), len(backfill))
        assert n > 0
        # ... but the backfill log waits no longer in aggregate.
        wait_fcfs = float(np.sum(fcfs.start - fcfs.submit))
        wait_backfill = float(np.sum(backfill.start - backfill.submit))
        assert wait_backfill <= wait_fcfs + 1e-6
