"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.utils.timeutils import DAY, HOUR
from repro.workload.generator import WorkloadConfig, WorkloadGenerator, generate_job_log


class TestWorkloadConfig:
    def test_defaults_valid(self):
        config = WorkloadConfig()
        assert config.max_job_nodes > 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_job_nodes", 0),
            ("mean_job_duration_seconds", -1),
            ("duration_sigma", 0),
            ("target_utilization", 1.5),
            ("node_count_decay", 1.0),
            ("min_job_duration_seconds", 0),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            WorkloadConfig(**{field: value})

    def test_node_count_probabilities_sum_to_one(self):
        config = WorkloadConfig(max_job_nodes=128)
        probs = config.node_count_probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert len(probs) == 8  # 1, 2, ..., 128

    def test_node_count_values_are_powers_of_two(self):
        config = WorkloadConfig(max_job_nodes=64)
        values = config.node_count_values()
        assert values.tolist() == [1, 2, 4, 8, 16, 32, 64]

    def test_small_jobs_more_likely(self):
        config = WorkloadConfig(max_job_nodes=64)
        probs = config.node_count_probabilities()
        assert np.all(np.diff(probs) < 0)


class TestWorkloadGenerator:
    @pytest.fixture(scope="class")
    def generated(self):
        config = WorkloadConfig(max_job_nodes=32, mean_job_duration_seconds=6 * HOUR)
        generator = WorkloadGenerator(
            config, n_cluster_nodes=64, duration_seconds=60 * DAY, seed=5
        )
        return generator.generate()

    def test_produces_jobs(self, generated):
        assert len(generated) > 50

    def test_jobs_start_within_period(self, generated):
        assert generated.start.min() >= 0
        assert generated.start.max() < 60 * DAY

    def test_node_counts_bounded(self, generated):
        assert generated.n_nodes.max() <= 32
        assert generated.n_nodes.min() >= 1

    def test_durations_heavy_tailed(self, generated):
        durations = generated.durations
        assert durations.max() > 4 * np.median(durations)

    def test_high_utilization(self, generated):
        util = generated.utilization(64, 60 * DAY)
        assert util > 0.7

    def test_node_counts_span_orders_of_magnitude(self, generated):
        assert generated.n_nodes.max() / generated.n_nodes.min() >= 16

    def test_reproducible(self):
        a = generate_job_log(n_cluster_nodes=16, duration_seconds=20 * DAY, seed=3)
        b = generate_job_log(n_cluster_nodes=16, duration_seconds=20 * DAY, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_job_log(n_cluster_nodes=16, duration_seconds=20 * DAY, seed=3)
        b = generate_job_log(n_cluster_nodes=16, duration_seconds=20 * DAY, seed=4)
        assert a != b

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(n_cluster_nodes=0)
        with pytest.raises(ValueError):
            WorkloadGenerator(duration_seconds=0)

    def test_sample_durations_respect_minimum(self):
        config = WorkloadConfig(min_job_duration_seconds=600)
        generator = WorkloadGenerator(config, n_cluster_nodes=8, duration_seconds=DAY, seed=0)
        durations = generator.sample_durations(500)
        assert durations.min() >= 600
