"""Tests for job-size scaling (Section 5.6)."""

import numpy as np
import pytest

from repro.utils.timeutils import HOUR
from repro.workload.job import JobLog, JobRecord
from repro.workload.scaling import PAPER_SCALING_FACTORS, scale_job_log


@pytest.fixture()
def log():
    return JobLog.from_records(
        [
            JobRecord(submit=0, start=0, end=HOUR, n_nodes=1, job_id=0),
            JobRecord(submit=0, start=0, end=HOUR, n_nodes=64, job_id=1),
        ]
    )


class TestScaleJobLog:
    def test_scaling_factors_match_paper(self):
        assert PAPER_SCALING_FACTORS == (0.1, 0.3, 1.0, 3.0, 10.0)

    def test_scale_up(self, log):
        scaled = scale_job_log(log, 10.0)
        assert scaled.n_nodes.tolist() == [10.0, 640.0]

    def test_scale_down_keeps_fractional_weight(self, log):
        scaled = scale_job_log(log, 0.1)
        assert scaled.n_nodes[0] == pytest.approx(0.1)
        assert scaled.n_nodes[1] == pytest.approx(6.4)

    def test_durations_unchanged(self, log):
        scaled = scale_job_log(log, 3.0)
        assert np.array_equal(scaled.durations, log.durations)

    def test_total_node_hours_scale_proportionally(self, log):
        scaled = scale_job_log(log, 3.0)
        assert scaled.total_node_hours() == pytest.approx(3 * log.total_node_hours())

    def test_identity_scaling(self, log):
        assert scale_job_log(log, 1.0).n_nodes.tolist() == log.n_nodes.tolist()

    def test_minimum_node_floor(self, log):
        scaled = scale_job_log(log, 1e-6, min_nodes=0.5)
        assert scaled.n_nodes.min() == pytest.approx(0.5)

    def test_rejects_non_positive_factor(self, log):
        with pytest.raises(ValueError):
            scale_job_log(log, 0.0)
