"""Tests for node-level job timeline sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.timeutils import DAY, HOUR
from repro.workload.job import JobLog, JobRecord
from repro.workload.sampling import JobSequenceSampler, NodeJobTimeline


def _simple_job_log():
    return JobLog.from_records(
        [
            JobRecord(submit=0, start=0, end=2 * HOUR, n_nodes=1, job_id=0),
            JobRecord(submit=0, start=0, end=10 * HOUR, n_nodes=100, job_id=1),
        ]
    )


class TestNodeJobTimeline:
    def _timeline(self):
        return NodeJobTimeline(
            starts=np.array([0.0, 2 * HOUR, 6 * HOUR]),
            durations=np.array([2 * HOUR, 4 * HOUR, 10 * HOUR]),
            n_nodes=np.array([4.0, 16.0, 2.0]),
        )

    def test_job_at(self):
        timeline = self._timeline()
        start, nodes = timeline.job_at(1 * HOUR)
        assert start == 0.0 and nodes == 4.0
        start, nodes = timeline.job_at(3 * HOUR)
        assert start == 2 * HOUR and nodes == 16.0

    def test_job_at_beyond_horizon_uses_last_job(self):
        timeline = self._timeline()
        start, nodes = timeline.job_at(100 * HOUR)
        assert nodes == 2.0

    def test_potential_ue_cost_from_job_start(self):
        timeline = self._timeline()
        # At t = 4h the 16-node job has been running 2 hours.
        cost = timeline.potential_ue_cost(4 * HOUR, None, restartable=True)
        assert cost == pytest.approx(32.0)

    def test_potential_ue_cost_resets_after_mitigation(self):
        timeline = self._timeline()
        cost = timeline.potential_ue_cost(4 * HOUR, 3 * HOUR, restartable=True)
        assert cost == pytest.approx(16.0)

    def test_non_restartable_ignores_mitigation(self):
        timeline = self._timeline()
        cost = timeline.potential_ue_cost(4 * HOUR, 3 * HOUR, restartable=False)
        assert cost == pytest.approx(32.0)

    def test_mitigation_before_job_start_is_ignored(self):
        timeline = self._timeline()
        cost = timeline.potential_ue_cost(4 * HOUR, 1 * HOUR, restartable=True)
        assert cost == pytest.approx(32.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeJobTimeline(
                starts=np.array([1.0, 0.0]),
                durations=np.array([1.0, 1.0]),
                n_nodes=np.array([1.0, 1.0]),
            )
        with pytest.raises(ValueError):
            NodeJobTimeline(
                starts=np.array([]), durations=np.array([]), n_nodes=np.array([])
            )


class TestJobSequenceSampler:
    def test_rejects_empty_log(self):
        with pytest.raises(ValueError):
            JobSequenceSampler(JobLog.empty())

    def test_node_count_weighting(self):
        sampler = JobSequenceSampler(_simple_job_log(), seed=0)
        durations, nodes = sampler.sample_jobs(2000)
        # The 100-node job should be drawn ~100x more often than the 1-node job.
        fraction_large = np.mean(nodes == 100)
        assert fraction_large > 0.9

    def test_timeline_covers_range(self, job_sampler):
        timeline = job_sampler.sample_timeline(0.0, 5 * DAY)
        assert timeline.starts[0] <= 0.0
        assert timeline.ends[-1] >= 5 * DAY

    def test_timeline_jobs_are_back_to_back(self, job_sampler):
        timeline = job_sampler.sample_timeline(0.0, 10 * DAY)
        gaps = timeline.starts[1:] - timeline.ends[:-1]
        assert np.allclose(gaps, 0.0, atol=1e-6)

    def test_timeline_deterministic_given_rng(self, job_log):
        sampler = JobSequenceSampler(job_log, seed=0)
        a = sampler.sample_timeline(0, DAY, rng=np.random.default_rng(9))
        b = JobSequenceSampler(job_log, seed=0).sample_timeline(
            0, DAY, rng=np.random.default_rng(9)
        )
        assert np.array_equal(a.starts, b.starts)
        assert np.array_equal(a.n_nodes, b.n_nodes)

    def test_rejects_empty_range(self, job_sampler):
        with pytest.raises(ValueError):
            job_sampler.sample_timeline(DAY, DAY)

    @given(st.floats(min_value=HOUR, max_value=30 * DAY))
    @settings(max_examples=20, deadline=None)
    def test_property_cost_non_negative_over_range(self, horizon):
        sampler = JobSequenceSampler(_simple_job_log(), seed=1)
        timeline = sampler.sample_timeline(0.0, horizon)
        for t in np.linspace(0, horizon, 10):
            assert timeline.potential_ue_cost(t, None, True) >= 0.0
