"""Multi-process distributed sweeps: the acceptance tests of the subsystem.

Real worker *processes* (``_worker.py``) share one on-disk store:

* Two claim-mode workers racing over the same sweep compute every point
  exactly once, and the reduced result is bit-identical (modulo per-point
  wall-clock, which :func:`results_equivalent` zeroes) to a single-process
  :func:`run_sweep` of the same spec.
* A worker killed mid-point leaves an expired lease; a later worker
  reclaims it and the sweep still completes with the identical result —
  points are never lost and never double-counted.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.distributed import reduce_sweep, results_equivalent, sweep_status
from repro.evaluation.sweep import run_sweep
from repro.store import ArtifactStore

from tests.distributed._worker import build_spec, tiny_config

REPO = Path(__file__).resolve().parents[2]
WORKER = Path(__file__).with_name("_worker.py")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _spawn(store_dir, *extra):
    return subprocess.Popen(
        [sys.executable, str(WORKER), "--store", str(store_dir), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
        cwd=str(REPO),
    )


def _outcome(proc, timeout=600):
    stdout, stderr = proc.communicate(timeout=timeout)
    assert proc.returncode == 0, f"worker failed:\n{stderr}"
    return json.loads(stdout.strip().splitlines()[-1])


class TestTwoWorkerClaimSweep:
    def test_exactly_once_and_bit_identical(self, tmp_path):
        spec, config = build_spec((11, 12)), tiny_config()
        store_dir = tmp_path / "store"

        workers = [
            _spawn(store_dir, "--mode", "claim", "--worker-id", f"w{i}")
            for i in range(2)
        ]
        outcomes = [_outcome(proc) for proc in workers]

        # Exactly once: the computed sets partition the points.
        computed = sorted(
            label for outcome in outcomes for label in outcome["computed"]
        )
        assert computed == ["seed=11", "seed=12"]
        assert all(outcome["pending"] == [] for outcome in outcomes)
        # Whoever saw the last point land reduced the sweep.
        assert any(outcome["reduced"] for outcome in outcomes)

        store = ArtifactStore(store_dir)
        distributed = reduce_sweep(spec, config, store)
        assert distributed is not None
        single = run_sweep(spec, config)
        assert results_equivalent(distributed, single)
        # Everything cleaned up: no leases left behind.
        assert store.list_leases() == []


class TestKilledWorkerReclaim:
    def test_killed_workers_point_is_reclaimed_and_completed(self, tmp_path):
        spec, config = build_spec((21,)), tiny_config()
        store_dir = tmp_path / "store"
        sentinel = tmp_path / "CLAIMED"

        hanging = _spawn(
            store_dir,
            "--hang-after-claim",
            "--seeds", "21",
            "--worker-id", "doomed",
            "--lease-ttl", "1.0",
        )
        try:
            deadline = time.monotonic() + 60
            while not sentinel.exists():
                assert hanging.poll() is None, "hanging worker died early"
                assert time.monotonic() < deadline, "worker never claimed"
                time.sleep(0.05)
            assert sentinel.read_text() == "seed=21"

            store = ArtifactStore(store_dir)
            states = {s.label: s for s in sweep_status(spec, config, store)}
            assert states["seed=21"].state == "leased"
            assert states["seed=21"].owner == "doomed"
        finally:
            hanging.send_signal(signal.SIGKILL)
            hanging.wait(timeout=30)

        # The dead worker's lease goes stale after its 1 s TTL; a fresh
        # claim worker must reclaim the point and finish the sweep.
        rescuer = _spawn(
            store_dir,
            "--mode", "claim",
            "--seeds", "21",
            "--worker-id", "rescuer",
            "--lease-ttl", "1.0",
        )
        outcome = _outcome(rescuer)
        assert outcome["computed"] == ["seed=21"]
        assert outcome["reclaims"] == 1
        assert outcome["reduced"]

        store = ArtifactStore(store_dir)
        distributed = reduce_sweep(spec, config, store)
        assert distributed is not None
        assert results_equivalent(distributed, run_sweep(spec, config))
