"""Tests of the distributed-sweep subsystem: backends, leases, workers."""
