"""Concurrent-writer races against one on-disk store.

Real processes, one shared :class:`LocalFSBackend` directory:

* ``put_if_absent`` admits exactly one winner per key under a
  multi-process hammer — the primitive every claim rests on.
* Two processes saving the *same* result / prepared product concurrently
  leave a valid artifact (content-keyed writes are idempotent: last
  ``os.replace`` wins with identical bytes).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.config import ScenarioConfig
from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import ExperimentConfig, prepare_data
from repro.store import ArtifactStore, LocalFSBackend
from repro.utils.timeutils import DAY

TINY = ExperimentConfig(
    rl_episodes=4,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(8,),
    rf_n_estimators=3,
    rf_max_depth=3,
    threshold_grid_size=3,
    charge_training_time=False,
    executor_kind="serial",
)
SCENARIO = ScenarioConfig.small(seed=11).with_duration(45 * DAY)

N_PROCS = 6
N_KEYS = 10


def _hammer(args):
    """One contender: race put_if_absent on every key, return the wins."""
    root, contender = args
    backend = LocalFSBackend(root)
    wins = []
    for k in range(N_KEYS):
        if backend.put_if_absent(
            f"leases/key{k}.json", b"contender-%d" % contender
        ):
            wins.append(k)
    return contender, wins


def _save_result(args):
    """One writer: rebuild the result from its dict form and save it."""
    root, payload = args
    from repro.evaluation.pipeline import ExperimentResult

    store = ArtifactStore(root)
    result = ExperimentResult.from_dict(payload)
    return store.save_result(SCENARIO, TINY, result)


def _save_prepared(root):
    store = ArtifactStore(root)
    prepared = prepare_data(SCENARIO, TINY)
    store.save_prepared(prepared, TINY)
    return store.prepared_key(SCENARIO, TINY)


class TestPutIfAbsentHammer:
    def test_exactly_one_winner_per_key(self, tmp_path):
        root = tmp_path / "store"
        LocalFSBackend(root)  # pre-create so contenders race only on keys
        with multiprocessing.Pool(N_PROCS) as pool:
            outcomes = pool.map(
                _hammer, [(str(root), i) for i in range(N_PROCS)]
            )
        winners_per_key = {k: [] for k in range(N_KEYS)}
        for contender, wins in outcomes:
            for k in wins:
                winners_per_key[k].append(contender)
        assert all(len(winners) == 1 for winners in winners_per_key.values())
        # And each stored value is the winner's complete payload.
        backend = LocalFSBackend(root)
        for k, (winner,) in winners_per_key.items():
            assert backend.get(f"leases/key{k}.json") == b"contender-%d" % winner


class TestConcurrentArtifactWrites:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        return run_experiment(SCENARIO, TINY)

    def test_racing_save_result_leaves_a_valid_artifact(
        self, tmp_path, tiny_result
    ):
        root = tmp_path / "store"
        ArtifactStore(root)
        payload = tiny_result.to_dict()
        with multiprocessing.Pool(2) as pool:
            keys = pool.map(_save_result, [(str(root), payload)] * 2)
        assert keys[0] == keys[1]
        reloaded = ArtifactStore(root).load_result(SCENARIO, TINY)
        assert reloaded is not None
        assert reloaded.to_dict() == payload

    def test_racing_save_prepared_leaves_a_loadable_product(self, tmp_path):
        root = tmp_path / "store"
        ArtifactStore(root)
        with multiprocessing.Pool(2) as pool:
            keys = pool.map(_save_prepared, [str(root)] * 2)
        assert keys[0] == keys[1]
        store = ArtifactStore(root)
        assert store.load_prepared(SCENARIO, TINY) is not None
        assert store.list_prepared() == [keys[0]]
