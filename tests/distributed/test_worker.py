"""The worker/reduce/status layer (:mod:`repro.distributed`) in one process.

One *real* tiny experiment is computed once per module; a fake
``compute_fn`` then hands that result to every point, so these tests
exercise the coordination protocol — claims, conflicts, reclaim, resume,
reduce, status — at unit-test speed.  Real multi-process computation is
covered by ``test_multiworker.py`` and the golden harness.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.config import ScenarioConfig
from repro.distributed import (
    PointStatus,
    reduce_sweep,
    results_equivalent,
    run_sweep_worker,
    sweep_scientific_json,
    sweep_status,
)
from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.sweep import SweepSpec
from repro.store import ArtifactStore, DictBackend
from repro.utils.timeutils import DAY

TINY = ExperimentConfig(
    rl_episodes=4,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(8,),
    rf_n_estimators=3,
    rf_max_depth=3,
    threshold_grid_size=3,
    charge_training_time=False,
    executor_kind="serial",
)

BASE = ScenarioConfig.small(seed=11).with_duration(45 * DAY)
SPEC = SweepSpec(base=BASE, seeds=(11, 12, 13))


@pytest.fixture(scope="module")
def tiny_result():
    """One real result, reused by the fake compute of every point."""
    return run_experiment(BASE, TINY)


@pytest.fixture()
def store():
    return ArtifactStore(backend=DictBackend())


def fake_compute(tiny_result, log=None):
    def compute(scenario, config, cache):
        if log is not None:
            log.append(scenario.seed)
        return tiny_result

    return compute


class TestArgValidation:
    def test_needs_a_store(self):
        with pytest.raises(ValueError, match="ArtifactStore"):
            run_sweep_worker(SPEC, TINY, None, claim=True)

    def test_exactly_one_mode(self, store):
        with pytest.raises(ValueError, match="exactly one"):
            run_sweep_worker(SPEC, TINY, store)
        with pytest.raises(ValueError, match="exactly one"):
            run_sweep_worker(SPEC, TINY, store, shard=(0, 2), claim=True)


class TestClaimMode:
    def test_single_worker_computes_everything_and_reduces(
        self, store, tiny_result
    ):
        log = []
        outcome = run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w1",
            compute_fn=fake_compute(tiny_result, log),
        )
        assert sorted(outcome.computed) == ["seed=11", "seed=12", "seed=13"]
        assert outcome.loaded == [] and outcome.pending == []
        assert sorted(log) == [11, 12, 13]
        assert outcome.reduced and outcome.result is not None
        assert outcome.result.labels == ["seed=11", "seed=12", "seed=13"]
        assert store.list_leases() == []  # all released

    def test_second_worker_loads_everything(self, store, tiny_result):
        run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w1",
            compute_fn=fake_compute(tiny_result),
        )
        log = []
        outcome = run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w2",
            compute_fn=fake_compute(tiny_result, log),
        )
        assert outcome.computed == [] and log == []
        assert sorted(outcome.loaded) == ["seed=11", "seed=12", "seed=13"]

    def test_exactly_once_across_interleaved_workers(self, store, tiny_result):
        # Worker 2's pass runs from inside worker 1's compute of the first
        # point: w1 holds that point's lease, so w2 must skip it (conflict),
        # compute the remaining points, and the union stays exactly-once.
        state = {"fired": False}
        log = []

        def w1_compute(scenario, config, cache):
            log.append(scenario.seed)
            if not state["fired"]:
                state["fired"] = True
                inner = run_sweep_worker(
                    SPEC, TINY, store, claim=True, worker_id="w2",
                    wait=False, compute_fn=fake_compute(tiny_result, log),
                    reduce=False,
                )
                assert inner.conflicts >= 1
                state["inner"] = inner
            return tiny_result

        outcome = run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w1",
            compute_fn=w1_compute,
        )
        inner = state["inner"]
        assert sorted(outcome.computed + inner.computed) == [
            "seed=11", "seed=12", "seed=13",
        ]
        assert sorted(log) == [11, 12, 13]  # every point computed once

    def test_wait_false_leaves_foreign_leases_pending(self, store, tiny_result):
        blocker = store.lease_manager(owner="other", ttl_seconds=60)
        first_key = store.result_key(SPEC.points()[0].scenario, TINY)
        assert blocker.claim(first_key, label="seed=11") is not None
        outcome = run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w1", wait=False,
            compute_fn=fake_compute(tiny_result),
        )
        assert outcome.pending == ["seed=11"]
        assert sorted(outcome.computed) == ["seed=12", "seed=13"]
        assert outcome.conflicts >= 1
        assert not outcome.reduced  # the sweep is not complete

    def test_expired_foreign_lease_is_reclaimed(self, store, tiny_result):
        dead = store.lease_manager(owner="dead", ttl_seconds=0.01)
        first_key = store.result_key(SPEC.points()[0].scenario, TINY)
        assert dead.claim(first_key, label="seed=11") is not None
        time.sleep(0.05)
        outcome = run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w1",
            compute_fn=fake_compute(tiny_result),
        )
        assert outcome.reclaims == 1
        assert sorted(outcome.computed) == ["seed=11", "seed=12", "seed=13"]
        assert outcome.reduced

    def test_waiting_worker_finishes_when_the_peer_publishes(
        self, store, tiny_result
    ):
        # A foreign live lease blocks the point; the "peer" publishes the
        # result mid-wait, and the waiting worker picks it up as loaded.
        peer = store.lease_manager(owner="peer", ttl_seconds=60)
        point = SPEC.points()[0]
        peer_lease = peer.claim(store.result_key(point.scenario, TINY))
        state = {"published": False}

        def compute(scenario, config, cache):
            if not state["published"]:
                state["published"] = True
                store.save_result(point.scenario, TINY, tiny_result)
                peer.release(peer_lease)
            return tiny_result

        outcome = run_sweep_worker(
            SPEC, TINY, store, claim=True, worker_id="w1",
            poll_seconds=0.01, compute_fn=compute,
        )
        assert outcome.loaded == ["seed=11"]
        assert sorted(outcome.computed) == ["seed=12", "seed=13"]
        assert outcome.reduced


class TestShardMode:
    def test_shards_partition_the_points(self, store, tiny_result):
        log = []
        a = run_sweep_worker(
            SPEC, TINY, store, shard=(0, 2),
            compute_fn=fake_compute(tiny_result, log),
        )
        assert a.computed == ["seed=11", "seed=13"]
        assert a.pending == ["seed=12"]
        assert not a.reduced
        b = run_sweep_worker(
            SPEC, TINY, store, shard=(1, 2),
            compute_fn=fake_compute(tiny_result, log),
        )
        assert b.computed == ["seed=12"]
        assert sorted(b.loaded) == ["seed=11", "seed=13"]
        assert b.reduced and b.result is not None
        assert sorted(log) == [11, 12, 13]

    def test_real_shard_mode_uses_the_sweep_engine(self, store):
        # No compute_fn: the static path must delegate to run_sweep's
        # shard-aware resume path and report its bookkeeping.
        outcome = run_sweep_worker(SPEC, TINY, store, shard=(0, 3))
        assert outcome.computed == ["seed=11"]
        assert sorted(outcome.pending) == ["seed=12", "seed=13"]


class TestReduce:
    def test_reduce_of_incomplete_sweep_is_none(self, store):
        assert reduce_sweep(SPEC, TINY, store) is None

    def test_reduce_assembles_and_persists_the_manifest(
        self, store, tiny_result
    ):
        run_sweep_worker(
            SPEC, TINY, store, claim=True, reduce=False,
            compute_fn=fake_compute(tiny_result),
        )
        assert store.list_sweeps() == []  # reduce=False suppressed it
        result = reduce_sweep(SPEC, TINY, store)
        assert result is not None
        assert result.labels == ["seed=11", "seed=12", "seed=13"]
        assert len(store.list_sweeps()) == 1
        # Idempotent: reducing again changes nothing.
        assert reduce_sweep(SPEC, TINY, store) is not None
        assert len(store.list_sweeps()) == 1


class TestStatus:
    def test_status_tracks_the_point_lifecycle(self, store, tiny_result):
        points = SPEC.points()
        states = {s.label: s for s in sweep_status(SPEC, TINY, store)}
        assert all(s.state == "pending" for s in states.values())

        manager = store.lease_manager(owner="w1", ttl_seconds=60)
        manager.claim(store.result_key(points[0].scenario, TINY), label="seed=11")
        store.save_result(points[1].scenario, TINY, tiny_result)

        states = {s.label: s for s in sweep_status(SPEC, TINY, store)}
        assert states["seed=11"].state == "leased"
        assert states["seed=11"].owner == "w1"
        assert states["seed=11"].heartbeat_age >= 0.0
        assert not states["seed=11"].expired
        assert states["seed=12"].state == "done"
        assert states["seed=13"].state == "pending"
        assert "leased by w1" in states["seed=11"].describe()
        assert states["seed=12"].describe() == "seed=12: done"

    def test_expired_lease_is_flagged(self, store):
        manager = store.lease_manager(owner="w1", ttl_seconds=0.01)
        point = SPEC.points()[0]
        manager.claim(store.result_key(point.scenario, TINY), label="seed=11")
        time.sleep(0.05)
        states = {s.label: s for s in sweep_status(SPEC, TINY, store)}
        assert states["seed=11"].expired
        assert "EXPIRED" in states["seed=11"].describe()


class TestEquivalence:
    def test_wallclock_is_ignored_everything_else_is_not(
        self, store, tiny_result
    ):
        run_sweep_worker(
            SPEC, TINY, store, claim=True, compute_fn=fake_compute(tiny_result)
        )
        a = reduce_sweep(SPEC, TINY, store)

        perturbed = dict(a.results)
        perturbed["seed=11"] = dataclasses.replace(
            a.results["seed=11"], wallclock_seconds=12345.0
        )
        b = dataclasses.replace(a, results=perturbed)
        assert results_equivalent(a, b)

        changed = dict(a.results)
        changed["seed=11"] = dataclasses.replace(
            a.results["seed=11"], mitigation_cost_node_hours=999.0
        )
        c = dataclasses.replace(a, results=changed)
        assert not results_equivalent(a, c)

    def test_scientific_json_zeroes_every_point_wallclock(
        self, store, tiny_result
    ):
        run_sweep_worker(
            SPEC, TINY, store, claim=True, compute_fn=fake_compute(tiny_result)
        )
        a = reduce_sweep(SPEC, TINY, store)
        assert '"wallclock_seconds": 12345.0' not in sweep_scientific_json(
            dataclasses.replace(
                a,
                results={
                    label: dataclasses.replace(r, wallclock_seconds=12345.0)
                    for label, r in a.results.items()
                },
            )
        )
