"""The pluggable :class:`~repro.store.backends.StoreBackend` contract.

Every test runs against both implementations — the on-disk
:class:`LocalFSBackend` and the in-memory :class:`DictBackend` — because
the whole point of the protocol is that the :class:`ArtifactStore` and the
lease machinery cannot tell them apart.
"""

from __future__ import annotations

import threading

import pytest

from repro.store import ArtifactStore, DictBackend, LocalFSBackend


@pytest.fixture(params=["localfs", "dict"])
def backend(request, tmp_path):
    if request.param == "localfs":
        return LocalFSBackend(tmp_path / "store")
    return DictBackend()


class TestGetPut:
    def test_roundtrip(self, backend):
        backend.put("results/abc.json", b"{}\n")
        assert backend.get("results/abc.json") == b"{}\n"

    def test_missing_key_is_none(self, backend):
        assert backend.get("results/nothing.json") is None

    def test_put_overwrites(self, backend):
        backend.put("k.json", b"old")
        backend.put("k.json", b"new")
        assert backend.get("k.json") == b"new"

    def test_size_and_mtime(self, backend):
        backend.put("k.json", b"12345")
        assert backend.size("k.json") == 5
        assert backend.mtime("k.json") > 0
        assert backend.size("missing") == 0
        with pytest.raises(FileNotFoundError):
            backend.mtime("missing")


class TestDelete:
    def test_delete_removes(self, backend):
        backend.put("a/b/c.json", b"x")
        backend.delete("a/b/c.json")
        assert backend.get("a/b/c.json") is None

    def test_delete_missing_is_noop(self, backend):
        backend.delete("a/missing.json")  # must not raise

    def test_localfs_delete_prunes_empty_dirs(self, tmp_path):
        backend = LocalFSBackend(tmp_path / "store")
        backend.put("prepared/deep/nest/arrays.npz", b"x")
        backend.delete("prepared/deep/nest/arrays.npz")
        # The content-key directory vanishes with its last object, matching
        # the old rmtree-based gc layout.
        assert not (tmp_path / "store" / "prepared" / "deep").exists()
        assert (tmp_path / "store").exists()


class TestList:
    def test_prefix_listing_is_sorted(self, backend):
        backend.put("results/b.json", b"1")
        backend.put("results/a.json", b"1")
        backend.put("sweeps/c.json", b"1")
        assert backend.list("results/") == ["results/a.json", "results/b.json"]

    def test_empty_prefix_lists_everything(self, backend):
        backend.put("x.json", b"1")
        backend.put("leases/y.json", b"1")
        assert backend.list("") == ["leases/y.json", "x.json"]

    def test_missing_prefix_is_empty(self, backend):
        assert backend.list("nothing/") == []


class TestKeyValidation:
    @pytest.mark.parametrize("bad", ["", "/abs/path", "a/../b", ".", "a//b"])
    def test_bad_keys_rejected(self, backend, bad):
        with pytest.raises(ValueError):
            backend.put(bad, b"x")
        with pytest.raises(ValueError):
            backend.get(bad)


class TestPutIfAbsent:
    def test_first_writer_wins(self, backend):
        assert backend.put_if_absent("leases/k.json", b"winner") is True
        assert backend.put_if_absent("leases/k.json", b"loser") is False
        assert backend.get("leases/k.json") == b"winner"

    def test_delete_reopens_the_key(self, backend):
        backend.put_if_absent("leases/k.json", b"one")
        backend.delete("leases/k.json")
        assert backend.put_if_absent("leases/k.json", b"two") is True
        assert backend.get("leases/k.json") == b"two"

    def test_threaded_hammer_admits_exactly_one_winner(self, backend):
        wins = []
        barrier = threading.Barrier(8)

        def contender(i):
            barrier.wait()
            if backend.put_if_absent("leases/hot.json", b"%d" % i):
                wins.append(i)

        threads = [
            threading.Thread(target=contender, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert backend.get("leases/hot.json") == b"%d" % wins[0]

    def test_localfs_leaves_no_tmp_droppings(self, tmp_path):
        backend = LocalFSBackend(tmp_path / "store")
        backend.put_if_absent("leases/k.json", b"one")
        backend.put_if_absent("leases/k.json", b"two")  # loser
        leftovers = [
            p
            for p in (tmp_path / "store").rglob("*")
            if p.is_file() and p.name != "k.json"
        ]
        assert leftovers == []


class TestStoreOverBackends:
    """The ArtifactStore works identically over either backend."""

    def test_store_opens_over_dict_backend(self):
        store = ArtifactStore(backend=DictBackend())
        assert store.root is None  # nothing on disk
        assert store.list_results() == []

    def test_store_requires_exactly_one_of_root_and_backend(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path / "runs", backend=DictBackend())
        with pytest.raises(ValueError):
            ArtifactStore()

    def test_localfs_layout_is_unchanged(self, tmp_path):
        # The package split must keep the classic on-disk layout: marker at
        # the root, one directory per family.
        root = tmp_path / "runs"
        store = ArtifactStore(root)
        assert (root / "store.json").exists()
        for family in ("prepared", "results", "sweeps", "leases"):
            assert (root / family).is_dir()
        assert store.root == root
