"""Subprocess entry point for the multi-worker integration tests.

Runs one distributed-sweep worker against a shared on-disk store and
prints its :class:`~repro.distributed.WorkerOutcome` as one JSON line, so
the parent test can assert the exactly-once claim metrics.  With
``--hang-after-claim`` it instead claims the first pending point, drops a
``CLAIMED`` sentinel file next to the store, and sleeps without ever
heartbeating — the stand-in for a worker killed mid-point.

Invoked as ``python tests/distributed/_worker.py --store DIR ...`` with
``PYTHONPATH=src``; kept importable so the tests share its spec/config
builders instead of duplicating them.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def tiny_config():
    from repro.evaluation.pipeline import ExperimentConfig

    return ExperimentConfig(
        rl_episodes=4,
        rl_hyperparam_trials=1,
        rl_hidden_sizes=(8,),
        rf_n_estimators=3,
        rf_max_depth=3,
        threshold_grid_size=3,
        charge_training_time=False,
        executor_kind="serial",
    )


def golden_config():
    """The golden harness's small-but-complete schedule (serial)."""
    from repro.evaluation.pipeline import ExperimentConfig

    return ExperimentConfig(
        rl_episodes=15,
        rl_hyperparam_trials=1,
        rl_hidden_sizes=(16, 8),
        rf_n_estimators=5,
        rf_max_depth=5,
        threshold_grid_size=6,
        charge_training_time=False,
    )


def build_spec(seeds):
    from repro.config import ScenarioConfig
    from repro.evaluation.sweep import SweepSpec
    from repro.utils.timeutils import DAY

    base = ScenarioConfig.small(seed=11).with_duration(45 * DAY)
    return SweepSpec(base=base, seeds=tuple(seeds))


def golden_spec():
    """One point: exactly the golden harness's ``ScenarioConfig.small()``."""
    from repro.config import ScenarioConfig
    from repro.evaluation.sweep import SweepSpec

    return SweepSpec(base=ScenarioConfig.small())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--store", required=True)
    parser.add_argument("--mode", choices=("claim", "shard"), default="claim")
    parser.add_argument("--shard", default=None, metavar="I/N")
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--lease-ttl", type=float, default=None)
    parser.add_argument("--poll-seconds", type=float, default=0.1)
    parser.add_argument("--seeds", default="11,12")
    parser.add_argument(
        "--golden",
        action="store_true",
        help="use the golden harness's spec/config instead of the tiny ones",
    )
    parser.add_argument(
        "--hang-after-claim",
        action="store_true",
        help="claim the first pending point, then sleep forever (no "
        "heartbeats) — simulates a worker about to be killed",
    )
    args = parser.parse_args(argv)

    from repro.distributed import run_sweep_worker
    from repro.store import ArtifactStore

    if args.golden:
        spec, config = golden_spec(), golden_config()
    else:
        spec = build_spec(int(s) for s in args.seeds.split(","))
        config = tiny_config()
    store = ArtifactStore(args.store)

    if args.hang_after_claim:
        manager = store.lease_manager(
            owner=args.worker_id or "hanging", ttl_seconds=args.lease_ttl
        )
        for point in spec.points():
            key = store.result_key(point.scenario, config)
            if store.has_result_key(key):
                continue
            lease = manager.claim(key, label=point.label)
            if lease is not None:
                sentinel = Path(args.store).parent / "CLAIMED"
                sentinel.write_text(point.label)
                time.sleep(600.0)  # killed long before this returns
                return 0
        return 1  # nothing left to claim: the test setup is wrong

    shard = None
    if args.shard is not None:
        index, count = args.shard.split("/")
        shard = (int(index), int(count))
    outcome = run_sweep_worker(
        spec,
        config,
        store,
        shard=shard,
        claim=args.mode == "claim",
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll_seconds=args.poll_seconds,
    )
    print(
        json.dumps(
            {
                "worker_id": outcome.worker_id,
                "computed": outcome.computed,
                "loaded": outcome.loaded,
                "pending": outcome.pending,
                "conflicts": outcome.conflicts,
                "reclaims": outcome.reclaims,
                "reduced": outcome.reduced,
            }
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
