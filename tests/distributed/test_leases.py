"""The lease/claim protocol (:mod:`repro.store.leases`).

Everything runs against a :class:`DictBackend` — the protocol only ever
speaks the backend contract, and the multi-process variants of these
guarantees are exercised in ``test_races.py`` / ``test_multiworker.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.store import (
    DEFAULT_LEASE_TTL,
    DictBackend,
    Lease,
    LeaseLost,
    LeaseManager,
    default_worker_id,
)


@pytest.fixture()
def backend():
    return DictBackend()


class TestWorkerIdentity:
    def test_default_worker_ids_are_unique(self):
        assert default_worker_id() != default_worker_id()

    def test_manager_defaults(self, backend):
        manager = LeaseManager(backend)
        assert manager.owner  # synthesized
        assert manager.ttl_seconds == DEFAULT_LEASE_TTL

    def test_nonpositive_ttl_rejected(self, backend):
        with pytest.raises(ValueError, match="ttl"):
            LeaseManager(backend, ttl_seconds=0)


class TestLeasePayload:
    def test_roundtrips_through_its_dict_form(self, backend):
        manager = LeaseManager(backend, owner="w1", ttl_seconds=30)
        lease = manager.claim("abcd1234", label="seed=7", prepared_key="pp")
        assert lease is not None
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_lease_lives_at_the_leases_key(self, backend):
        manager = LeaseManager(backend, owner="w1")
        lease = manager.claim("abcd1234", label="seed=7")
        assert lease.key == "leases/abcd1234.json"
        stored = json.loads(backend.get(lease.key).decode("utf-8"))
        assert stored["kind"] == "lease"
        assert stored["owner"] == "w1"
        assert stored["label"] == "seed=7"

    def test_age_and_expiry(self):
        lease = Lease(
            result_key="k", owner="w", label="", claimed_at=100.0,
            heartbeat=100.0, ttl_seconds=10.0,
        )
        assert lease.age(now=105.0) == 5.0
        assert not lease.expired(now=105.0)
        assert lease.expired(now=111.0)


class TestClaim:
    def test_fresh_claim_succeeds_and_counts(self, backend):
        manager = LeaseManager(backend, owner="w1")
        assert manager.claim("k1") is not None
        assert (manager.claims, manager.conflicts, manager.reclaims) == (1, 0, 0)

    def test_live_lease_conflicts(self, backend):
        first = LeaseManager(backend, owner="w1", ttl_seconds=60)
        second = LeaseManager(backend, owner="w2", ttl_seconds=60)
        assert first.claim("k1") is not None
        assert second.claim("k1") is None
        assert second.conflicts == 1
        assert second.claims == 0

    def test_own_live_lease_also_conflicts(self, backend):
        # Claiming a key twice is a caller bug; the protocol treats the
        # second attempt like any other loser rather than aliasing leases.
        manager = LeaseManager(backend, owner="w1", ttl_seconds=60)
        assert manager.claim("k1") is not None
        assert manager.claim("k1") is None

    def test_expired_lease_is_reclaimed(self, backend):
        dead = LeaseManager(backend, owner="dead", ttl_seconds=0.01)
        live = LeaseManager(backend, owner="live", ttl_seconds=60)
        assert dead.claim("k1", label="seed=7") is not None
        time.sleep(0.05)
        lease = live.claim("k1", label="seed=7")
        assert lease is not None
        assert lease.owner == "live"
        assert live.reclaims == 1
        assert live.claims == 1

    def test_vanished_lease_is_claimable(self, backend):
        # A lease released between our failed put and our load: the retry
        # path claims it without counting a reclaim (nothing was expired).
        manager = LeaseManager(backend, owner="w1", ttl_seconds=60)

        class VanishingBackend(DictBackend):
            def __init__(self, inner):
                super().__init__()
                self._inner = inner
                self._tries = 0

            def put_if_absent(self, key, data):
                self._tries += 1
                if self._tries == 1:
                    return False  # somebody held it a moment ago...
                return self._inner.put_if_absent(key, data)

            def get(self, key):
                return self._inner.get(key)  # ...but it is gone now

            def delete(self, key):
                return self._inner.delete(key)

        manager.backend = VanishingBackend(backend)
        lease = manager.claim("k1")
        assert lease is not None
        assert manager.reclaims == 0


class TestRenewRelease:
    def test_renew_refreshes_the_heartbeat(self, backend):
        manager = LeaseManager(backend, owner="w1", ttl_seconds=60)
        lease = manager.claim("k1")
        renewed = manager.renew(lease)
        assert renewed.heartbeat >= lease.heartbeat
        assert renewed.owner == "w1"
        assert manager.load("k1").heartbeat == renewed.heartbeat

    def test_renew_after_reclaim_raises_lease_lost(self, backend):
        slow = LeaseManager(backend, owner="slow", ttl_seconds=0.01)
        thief = LeaseManager(backend, owner="thief", ttl_seconds=60)
        lease = slow.claim("k1")
        time.sleep(0.05)
        assert thief.claim("k1") is not None
        with pytest.raises(LeaseLost, match="thief"):
            slow.renew(lease)

    def test_release_removes_own_lease(self, backend):
        manager = LeaseManager(backend, owner="w1")
        lease = manager.claim("k1")
        manager.release(lease)
        assert manager.load("k1") is None
        assert backend.list("leases/") == []

    def test_release_leaves_a_reclaimed_lease_alone(self, backend):
        slow = LeaseManager(backend, owner="slow", ttl_seconds=0.01)
        thief = LeaseManager(backend, owner="thief", ttl_seconds=60)
        lease = slow.claim("k1")
        time.sleep(0.05)
        stolen = thief.claim("k1")
        slow.release(lease)  # must not delete the thief's lease
        assert slow.load("k1") == stolen

    def test_list_leases(self, backend):
        manager = LeaseManager(backend, owner="w1")
        manager.claim("k1", label="a")
        manager.claim("k2", label="b")
        leases = manager.list_leases()
        assert sorted(lease.label for lease in leases) == ["a", "b"]
