"""Tests for the scenario sweep engine and its cross-scenario caches."""

from __future__ import annotations

import pytest

from repro.config import ScenarioConfig
from repro.evaluation.executor import execute_tasks
from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import (
    ExperimentConfig,
    PreparedDataCache,
    prepared_data_key,
)
from repro.evaluation.sweep import SweepSpec, run_sweep

#: Cheapest config that still runs every approach group (including the RL
#: warm-start chain).  ``charge_training_time=False`` zeroes the only
#: non-deterministic quantity, so sweep and independent runs compare exactly.
TINY = ExperimentConfig(
    rl_episodes=3,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(8,),
    rf_n_estimators=3,
    rf_max_depth=4,
    threshold_grid_size=3,
    include_myopic=False,
    charge_training_time=False,
)


def _cost_tuple(breakdown):
    return (
        breakdown.ue_cost,
        breakdown.mitigation_cost,
        breakdown.training_cost,
        breakdown.total,
        breakdown.n_ues,
        breakdown.n_mitigations,
    )


@pytest.fixture(scope="module")
def base_scenario():
    return ScenarioConfig.small(seed=7)


# --------------------------------------------------------------------- #
# SweepSpec
# --------------------------------------------------------------------- #
class TestSweepSpec:
    def test_cross_product_and_labels(self, base_scenario):
        spec = SweepSpec(
            base=base_scenario,
            mitigation_costs=(2.0, 5.0, 10.0),
            restartable=(True, False),
        )
        points = spec.points()
        assert spec.n_points == 6
        assert len(points) == 6
        assert points[0].label == "cost=2,restart=on"
        assert points[-1].label == "cost=10,restart=off"
        by_label = {point.label: point for point in points}
        assert (
            by_label["cost=5,restart=off"].scenario
            == base_scenario.with_mitigation_cost(5.0).with_restartable(False)
        )

    def test_axis_values_applied_to_scenario(self, base_scenario):
        spec = SweepSpec(
            base=base_scenario,
            manufacturers=(None, 1),
            job_scales=(3.0,),
            seeds=(11,),
        )
        points = spec.points()
        assert [point.label for point in points] == [
            "seed=11,mfr=all,scale=x3",
            "seed=11,mfr=B,scale=x3",
        ]
        assert points[1].scenario.manufacturer == 1
        assert points[1].scenario.job_scaling_factor == 3.0
        assert points[1].scenario.seed == 11

    def test_degenerate_spec_is_one_point(self, base_scenario):
        points = SweepSpec(base=base_scenario).points()
        assert len(points) == 1
        assert points[0].label == base_scenario.name
        assert points[0].scenario == base_scenario

    def test_duplicate_axis_values_rejected(self, base_scenario):
        spec = SweepSpec(base=base_scenario, mitigation_costs=(5.0, 5.0))
        with pytest.raises(ValueError, match="duplicate sweep point"):
            spec.points()

    def test_empty_axis_rejected(self, base_scenario):
        with pytest.raises(ValueError, match="must not be empty"):
            SweepSpec(base=base_scenario, seeds=()).points()


# --------------------------------------------------------------------- #
# run_sweep == N independent run_experiment calls (the acceptance grid)
# --------------------------------------------------------------------- #
class TestRunSweep:
    @pytest.fixture(scope="class")
    def cost_restart_sweep(self, base_scenario):
        cache = PreparedDataCache()
        spec = SweepSpec(
            base=base_scenario,
            mitigation_costs=(2.0, 5.0, 10.0),
            restartable=(True, False),
        )
        return run_sweep(spec, TINY, cache=cache), cache

    def test_prepare_data_called_exactly_once(self, cost_restart_sweep):
        sweep, cache = cost_restart_sweep
        assert len(sweep) == 6
        assert sweep.prepare_calls == 1
        assert cache.prepare_calls == 1
        assert sweep.cache_hits == 5

    def test_results_identical_to_independent_runs(
        self, cost_restart_sweep, base_scenario
    ):
        sweep, _ = cost_restart_sweep
        for cost in (2.0, 5.0, 10.0):
            for restartable in (True, False):
                label = (
                    f"cost={cost:g},restart={'on' if restartable else 'off'}"
                )
                scenario = base_scenario.with_mitigation_cost(cost).with_restartable(
                    restartable
                )
                independent = run_experiment(scenario, TINY)
                swept = sweep[label]
                assert swept.approach_names == independent.approach_names, label
                for name in independent.approach_names:
                    assert _cost_tuple(swept.total_costs()[name]) == _cost_tuple(
                        independent.total_costs()[name]
                    ), f"{label}: {name}"
                assert swept.n_test_events == independent.n_test_events, label

    def test_series_and_table(self, cost_restart_sweep):
        sweep, _ = cost_restart_sweep
        never = sweep.series("Never-mitigate")
        assert len(never) == 6
        assert all(value > 0 for value in never)
        table = sweep.table()
        assert "cost=10,restart=off" in table
        assert "Never-mitigate" in table
        point_table = sweep.point_table("cost=2,restart=on")
        assert "Oracle" in point_table

    def test_unknown_point_names_the_available_labels(self, cost_restart_sweep):
        sweep, _ = cost_restart_sweep
        with pytest.raises(KeyError) as excinfo:
            sweep["cost=3,restart=on"]
        message = str(excinfo.value)
        assert "cost=3,restart=on" in message
        assert "available points" in message
        assert "cost=2,restart=on" in message
        # point_table goes through the same diagnostic path.
        with pytest.raises(KeyError, match="available points"):
            sweep.point_table("nope")

    def test_unknown_approach_names_the_available_approaches(
        self, cost_restart_sweep
    ):
        sweep, _ = cost_restart_sweep
        with pytest.raises(KeyError) as excinfo:
            sweep.series("Sometimes-mitigate")
        message = str(excinfo.value)
        assert "Sometimes-mitigate" in message
        assert "available approaches" in message
        assert "Never-mitigate" in message

    def test_unknown_series_field_names_the_cost_fields(self, cost_restart_sweep):
        sweep, _ = cost_restart_sweep
        with pytest.raises(ValueError) as excinfo:
            sweep.series("Never-mitigate", which="grand_total")
        message = str(excinfo.value)
        assert "grand_total" in message
        assert "ue_cost" in message and "mitigation_cost" in message

    def test_thread_backend_matches_serial(self, base_scenario):
        spec = SweepSpec(base=base_scenario, mitigation_costs=(2.0, 10.0))
        serial = run_sweep(spec, TINY, cache=PreparedDataCache())
        threaded = run_sweep(
            spec,
            TINY.with_overrides(n_workers=2, executor_kind="thread"),
            cache=PreparedDataCache(),
        )
        for label in serial.labels:
            for name in serial[label].approach_names:
                assert _cost_tuple(serial[label].total_costs()[name]) == _cost_tuple(
                    threaded[label].total_costs()[name]
                ), f"{label}: {name}"

    def test_external_error_log_passthrough(self, base_scenario):
        """A supplied error log feeds every point, like in run_experiment."""
        from repro.evaluation.pipeline import clear_trace_cache
        from repro.telemetry.generator import TelemetryGenerator

        # Start from an empty trace cache: a stale synthetic-run entry must
        # not be able to mask the external log (regression guard for the
        # external-input nonce in PreparedData.data_key).
        clear_trace_cache()
        synthetic = run_experiment(base_scenario, TINY.with_overrides(include_rl=False))
        # Deliberately seeded differently from prepare_data's own generator.
        error_log = TelemetryGenerator(
            base_scenario.topology,
            base_scenario.fault_model,
            base_scenario.duration_seconds,
            seed=base_scenario.seed,
        ).generate()
        config = TINY.with_overrides(include_rl=False)
        spec = SweepSpec(base=base_scenario, manufacturers=(None, 0))
        sweep = run_sweep(spec, config, cache=PreparedDataCache(), error_log=error_log)
        # The external log genuinely drove the evaluation: the whole-fleet
        # point differs from the synthetic run of the same scenario.
        assert _cost_tuple(sweep["mfr=all"].total_costs()["Never-mitigate"]) != (
            _cost_tuple(synthetic.total_costs()["Never-mitigate"])
        )
        for label, manufacturer in (("mfr=all", None), ("mfr=A", 0)):
            independent = run_experiment(
                base_scenario.with_manufacturer(manufacturer),
                config,
                error_log=error_log,
            )
            for name in independent.approach_names:
                assert _cost_tuple(sweep[label].total_costs()[name]) == _cost_tuple(
                    independent.total_costs()[name]
                ), f"{label}: {name}"

    def test_scenario_axes_match_config_overrides(self, base_scenario):
        """The new ScenarioConfig axes mirror the ExperimentConfig knobs."""
        config = TINY.with_overrides(include_rl=False)
        via_scenario = run_experiment(
            base_scenario.with_manufacturer(2).with_job_scale(3.0), config
        )
        via_config = run_experiment(
            base_scenario,
            config.with_overrides(manufacturer=2, job_scaling_factor=3.0),
        )
        for name in via_config.approach_names:
            assert _cost_tuple(via_scenario.total_costs()[name]) == _cost_tuple(
                via_config.total_costs()[name]
            ), name


# --------------------------------------------------------------------- #
# PreparedDataCache (the property tests of the cross-scenario cache)
# --------------------------------------------------------------------- #
class TestPreparedDataCache:
    def test_evaluation_only_changes_hit(self, base_scenario):
        """Points differing only in mitigation cost share one product."""
        cache = PreparedDataCache()
        a = cache.get(base_scenario.with_mitigation_cost(2.0), TINY)
        b = cache.get(base_scenario.with_mitigation_cost(10.0), TINY)
        assert cache.prepare_calls == 1
        assert cache.hits == 1
        # The heavyweight products are the *same objects* (stronger than
        # byte-identical); only the scenario binding differs.
        assert a.tracks is b.tracks
        assert a.sampler is b.sampler
        assert a.reduction_report is b.reduction_report
        assert a.data_key == b.data_key
        assert b.scenario.evaluation.mitigation_cost_node_minutes == 10.0

    def test_restartable_change_hits_too(self, base_scenario):
        cache = PreparedDataCache()
        a = cache.get(base_scenario, TINY)
        b = cache.get(base_scenario.with_restartable(False), TINY)
        assert cache.prepare_calls == 1
        assert a.tracks is b.tracks

    def test_differing_seeds_miss(self, base_scenario):
        cache = PreparedDataCache()
        a = cache.get(base_scenario, TINY)
        b = cache.get(base_scenario.with_seed(99), TINY)
        assert cache.prepare_calls == 2
        assert cache.hits == 0
        assert a.tracks is not b.tracks
        assert a.data_key != b.data_key

    def test_manufacturer_miss_shares_raw_telemetry(self, base_scenario):
        """A data-axis miss rebuilds the reduction but not the raw logs."""
        cache = PreparedDataCache()
        cache.get(base_scenario, TINY)
        cache.get(base_scenario.with_manufacturer(0), TINY)
        assert cache.prepare_calls == 2
        assert len(cache._telemetry) == 1
        assert len(cache._job_logs) == 1

    def test_external_logs_never_share_trace_cache_entries(self, base_scenario):
        """A synthetic run must not poison an external-log run's traces.

        ``prepare_data`` gives externally fed products a unique nonce in
        their ``data_key``; without it, the process-wide trace cache would
        serve the synthetic run's traces to the external-log run of the
        same scenario (and vice versa).
        """
        from repro.evaluation.pipeline import prepare_data
        from repro.telemetry.generator import TelemetryGenerator

        synthetic = prepare_data(base_scenario, TINY)
        external_log = TelemetryGenerator(
            base_scenario.topology,
            base_scenario.fault_model,
            base_scenario.duration_seconds,
            seed=base_scenario.seed,
        ).generate()
        fed_once = prepare_data(base_scenario, TINY, error_log=external_log)
        fed_twice = prepare_data(base_scenario, TINY, error_log=external_log)
        assert fed_once.data_key != synthetic.data_key
        assert fed_once.data_key != fed_twice.data_key

    def test_key_ignores_evaluation_parameters(self, base_scenario):
        key_a = prepared_data_key(base_scenario, TINY)
        key_b = prepared_data_key(
            base_scenario.with_mitigation_cost(10.0).with_restartable(False), TINY
        )
        assert key_a == key_b
        assert prepared_data_key(base_scenario.with_seed(8), TINY) != key_a
        assert prepared_data_key(base_scenario.with_job_scale(2.0), TINY) != key_a


# --------------------------------------------------------------------- #
# Serial-fallback warning propagation (PR 1 review fix, through run_sweep)
# --------------------------------------------------------------------- #
class TestSerialFallbackWarning:
    def test_runtime_warning_propagates_through_run_sweep(
        self, base_scenario, monkeypatch
    ):
        """A dead/forbidden process pool must stay visible in sweep runs."""
        import repro.evaluation.executor as executor_module

        def _refuse(*args, **kwargs):
            raise OSError("process spawning forbidden by test")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", _refuse)
        spec = SweepSpec(base=base_scenario, mitigation_costs=(2.0,))
        config = TINY.with_overrides(
            include_rl=False, n_workers=2, executor_kind="process"
        )
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            result = run_sweep(spec, config, cache=PreparedDataCache())
        # The fallback still produces the full result set.
        assert result["cost=2"].approach_names

    def test_execute_tasks_warning_baseline(self, monkeypatch):
        """Same fallback at the executor layer (guards the match string)."""
        import repro.evaluation.executor as executor_module

        def _refuse(*args, **kwargs):
            raise OSError("process spawning forbidden by test")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", _refuse)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = execute_tasks(
                [executor_module.Task(key="t", fn=_noop_task)],
                n_workers=2,
                kind="process",
            )
        assert results["t"] == "ok"


def _noop_task(deps):
    return "ok"
