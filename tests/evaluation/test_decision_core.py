"""Equivalence suite: the vectorized decision core vs the scalar replay.

``evaluate_policy(vectorized=True)`` — batched ``decide_batch`` decisions
plus the segmented-scan cost accounting (and, for cost-dependent policies
under restartable jobs, the speculative renewal walk) — must produce
*identical* ``PolicyEvaluation`` objects to the per-event reference path
for every built-in policy, over generated traces, all restartable/cost
combinations.  Policies without ``decide_batch`` (user-registered customs)
must silently take the scalar path and still work, including through the
approach registry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.myopic import MyopicRFPolicy
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
    PeriodicMitigatePolicy,
)
from repro.config import ScenarioConfig
from repro.core.dqn import DDDQNAgent, DQNConfig
from repro.core.policies import CallablePolicy, MitigationPolicy, RLPolicy
from repro.evaluation.experiment import run_experiment
from repro.evaluation.pipeline import ExperimentConfig
from repro.evaluation.registry import ApproachSpec, register_approach, unregister_approach
from repro.evaluation.runner import build_traces, evaluate_policy
from repro.utils.timeutils import DAY


@pytest.fixture(scope="module")
def traces(feature_tracks, job_sampler):
    """A realistic multi-node trace set from the session-scoped small log."""
    times = [track.times for track in feature_tracks.values() if len(track)]
    t_max = max(float(t[-1]) for t in times)
    return build_traces(
        feature_tracks, job_sampler, 0.4 * t_max, t_max + 1.0, seed=97
    )


@pytest.fixture(scope="module")
def sc20_policy(feature_tracks):
    dataset = build_prediction_dataset(
        feature_tracks, prediction_window_seconds=DAY, t_start=0.0, t_end=50 * DAY
    )
    forest, _ = train_sc20_forest(dataset, n_estimators=8, max_depth=6, seed=5)
    return SC20RandomForestPolicy(forest, threshold=0.4)


def _rl_policy(normalizer, seed, mitigate_bias=0.0):
    agent = DDDQNAgent(
        normalizer.state_dim, DQNConfig(hidden_sizes=(24, 12), seed=seed)
    )
    # Shift the advantage head so different fixtures cover sparse, moderate
    # and dense mitigation regimes (the renewal walk behaves differently in
    # each).
    agent.online.advantage_b[:] = [-mitigate_bias, 0.0]
    agent.target.copy_from(agent.online)
    return RLPolicy(agent, normalizer)


def _assert_paths_identical(traces, policy, mitigation_cost, restartable, **kwargs):
    scalar = evaluate_policy(
        traces, policy, mitigation_cost, restartable=restartable,
        vectorized=False, **kwargs,
    )
    vectorized = evaluate_policy(
        traces, policy, mitigation_cost, restartable=restartable,
        vectorized=True, **kwargs,
    )
    assert scalar.costs == vectorized.costs, policy.name
    assert scalar.confusion == vectorized.confusion, policy.name
    assert scalar.n_decision_points == vectorized.n_decision_points
    assert scalar.n_traces == vectorized.n_traces
    return scalar


class TestScalarVectorEquivalence:
    @pytest.mark.parametrize("restartable", [True, False])
    @pytest.mark.parametrize("cost", [2 / 60.0, 10 / 60.0, 0.0])
    def test_static_family(self, traces, restartable, cost):
        for policy in (
            NeverMitigatePolicy(),
            AlwaysMitigatePolicy(),
            OraclePolicy(),
            PeriodicMitigatePolicy(12.0),
            PeriodicMitigatePolicy(0.01),  # mitigates at nearly every event
        ):
            _assert_paths_identical(traces, policy, cost, restartable)

    @pytest.mark.parametrize("restartable", [True, False])
    @pytest.mark.parametrize("threshold", [0.1, 0.4, 0.9])
    def test_sc20_thresholds(self, traces, sc20_policy, restartable, threshold):
        _assert_paths_identical(
            traces, sc20_policy.with_threshold(threshold), 2 / 60.0, restartable
        )

    @pytest.mark.parametrize("restartable", [True, False])
    @pytest.mark.parametrize("cost", [2 / 60.0, 10 / 60.0, 0.0])
    def test_myopic_cost_feedback(self, traces, sc20_policy, restartable, cost):
        result = _assert_paths_identical(
            traces, MyopicRFPolicy(sc20_policy, cost), cost, restartable
        )
        assert result.n_decision_points > 0

    @pytest.mark.parametrize("restartable", [True, False])
    @pytest.mark.parametrize("bias", [-3.0, 0.0, 3.0])
    def test_rl_cost_feedback(self, traces, normalizer, restartable, bias):
        policy = _rl_policy(normalizer, seed=int(17 + bias), mitigate_bias=bias)
        _assert_paths_identical(traces, policy, 2 / 60.0, restartable)

    def test_ue_cost_fn_forces_the_scalar_path(self, traces):
        """A per-event cost override cannot be batched; both flags agree."""
        def double_cost(trace, index, time, default):
            return 2.0 * default

        _assert_paths_identical(
            traces, AlwaysMitigatePolicy(), 2 / 60.0, True, ue_cost_fn=double_cost
        )

    def test_mitigation_overhead_edge(self, traces):
        """Zero overhead makes same-timestamp completions an edge case."""
        _assert_paths_identical(
            traces,
            OraclePolicy(),
            0.0,
            True,
            mitigation_overhead_seconds=0.0,
        )


class _ThresholdOnCostPolicy(MitigationPolicy):
    """A decide()-only policy (no decide_batch): the fallback must carry it.

    Mitigates when the potential UE cost exceeds a threshold — deliberately
    cost-dependent, so under restartable jobs its decisions feed back into
    the costs, the hardest case for any shortcut to get wrong.
    """

    name = "Cost-threshold"

    def __init__(self, threshold_node_hours: float) -> None:
        self.threshold = float(threshold_node_hours)

    def decide(self, context) -> bool:
        return context.ue_cost > self.threshold


class TestScalarFallback:
    @pytest.mark.parametrize("restartable", [True, False])
    def test_decide_only_policy_evaluates_identically(self, traces, restartable):
        """vectorized=True silently falls back and changes nothing."""
        for policy in (
            _ThresholdOnCostPolicy(5.0),
            CallablePolicy(lambda ctx: ctx.event_index % 3 == 0, name="every-3rd"),
        ):
            _assert_paths_identical(traces, policy, 2 / 60.0, restartable)

    def test_decide_batch_declines_on_base_class(self, traces):
        assert _ThresholdOnCostPolicy(1.0).decide_batch(traces[0]) is None

    @pytest.mark.parametrize("restartable", [True, False])
    def test_full_trace_only_cost_dependent_policy_falls_back(
        self, traces, restartable
    ):
        """A cost-dependent policy that declines partial windows must abort
        the renewal walk mid-trace and re-replay scalar — not have its
        ``None`` coerced into all-False decisions."""

        class _FullTraceOnly(MitigationPolicy):
            name = "full-trace-only"
            cost_dependent = True

            def decide(self, context) -> bool:
                return context.ue_cost > 2.0

            def decide_batch(self, trace, ue_costs=None, start=0, stop=None):
                stop = len(trace) if stop is None else stop
                if ue_costs is None or start != 0 or stop != len(trace):
                    return None
                import numpy as np

                return np.asarray(ue_costs) > 2.0

        _assert_paths_identical(traces, _FullTraceOnly(), 2 / 60.0, restartable)

    def test_registry_registered_custom_policy_runs_through_experiment(self):
        """A registered approach without decide_batch completes an
        experiment via the scalar fallback and matches a directly computed
        scalar evaluation."""
        spec = register_approach(
            ApproachSpec(
                name="Cost-threshold",
                build=lambda ctx, config, rng: _ThresholdOnCostPolicy(5.0),
                group="custom-threshold",
                order=90,
            )
        )
        try:
            scenario = ScenarioConfig.small(seed=7).with_duration(30 * DAY)
            config = ExperimentConfig(
                include_rf=False,
                include_rl=False,
                include_myopic=False,
                include_oracle=False,
                include_static=True,
                charge_training_time=False,
            )
            result = run_experiment(scenario, config)
            assert "Cost-threshold" in result.approaches
            custom = result.approaches["Cost-threshold"].total_costs
            never = result.approaches["Never-mitigate"].total_costs
            assert custom.n_ues == never.n_ues
            assert custom.n_mitigations > 0
        finally:
            unregister_approach(spec.name)
