"""Tests for the Figure 6 behaviour grid."""

import numpy as np
import pytest

from repro.baselines.dataset import build_prediction_dataset
from repro.baselines.sc20 import SC20RandomForestPolicy, train_sc20_forest
from repro.core.features import N_FEATURES
from repro.core.policies import CallablePolicy
from repro.evaluation.behavior import behavior_grid


@pytest.fixture(scope="module")
def sc20_policy(feature_tracks):
    dataset = build_prediction_dataset(feature_tracks)
    forest, _ = train_sc20_forest(dataset, n_estimators=5, max_depth=6, seed=0)
    return SC20RandomForestPolicy(forest, threshold=0.5)


@pytest.fixture(scope="module")
def some_features(feature_tracks):
    features = np.concatenate(
        [t.features[~t.is_ue] for t in feature_tracks.values() if len(t)]
    )
    return features[:40]


class TestBehaviorGrid:
    def test_cost_threshold_policy_produces_monotone_grid(self, sc20_policy, some_features):
        policy = CallablePolicy(lambda ctx: ctx.ue_cost >= 100.0, name="cost-threshold")
        grid = behavior_grid(
            policy, sc20_policy, some_features,
            ue_cost_range=(1.0, 1e4), n_cost_bins=6, n_probability_bins=4,
            costs_per_event=6, seed=1,
        )
        assert grid.mitigation_fraction.shape == (4, 6)
        assert grid.mean_fraction_for_cost_above(1000.0) == pytest.approx(1.0)
        assert grid.mean_fraction_for_cost_below(10.0) == pytest.approx(0.0)

    def test_counts_sum_matches_samples(self, sc20_policy, some_features):
        policy = CallablePolicy(lambda ctx: True)
        grid = behavior_grid(
            policy, sc20_policy, some_features, costs_per_event=3, n_cost_bins=5,
            n_probability_bins=5, seed=0,
        )
        assert grid.counts.sum() == len(some_features) * 3
        assert grid.overall_mitigation_rate == pytest.approx(1.0)

    def test_never_policy_rate_zero(self, sc20_policy, some_features):
        policy = CallablePolicy(lambda ctx: False)
        grid = behavior_grid(
            policy, sc20_policy, some_features, costs_per_event=2, seed=0
        )
        assert grid.overall_mitigation_rate == 0.0

    def test_empty_cells_are_nan(self, sc20_policy, some_features):
        grid = behavior_grid(
            CallablePolicy(lambda ctx: True), sc20_policy, some_features,
            costs_per_event=1, n_cost_bins=4, n_probability_bins=10, seed=0,
        )
        # With few samples, at least one probability bin is empty.
        assert np.isnan(grid.mitigation_fraction).any()
        assert np.all(grid.counts[np.isnan(grid.mitigation_fraction)] == 0)

    def test_rejects_bad_inputs(self, sc20_policy, some_features):
        policy = CallablePolicy(lambda ctx: True)
        with pytest.raises(ValueError):
            behavior_grid(policy, sc20_policy, np.empty((0, N_FEATURES)))
        with pytest.raises(ValueError):
            behavior_grid(policy, sc20_policy, some_features, ue_cost_range=(10.0, 1.0))
        with pytest.raises(ValueError):
            behavior_grid(policy, sc20_policy, some_features, n_cost_bins=0)
