"""Tests for the end-to-end experiment driver (scaled-down schedule)."""

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.evaluation.costs import CostBreakdown
from repro.evaluation.experiment import (
    ApproachResult,
    ExperimentConfig,
    run_experiment,
)
from repro.evaluation.runner import PolicyEvaluation
from repro.evaluation.metrics import ConfusionCounts


@pytest.fixture(scope="module")
def tiny_result():
    """A deliberately tiny experiment: exercises the full pipeline quickly."""
    scenario = ScenarioConfig.small(seed=13)
    config = ExperimentConfig(
        rl_episodes=15,
        rl_hyperparam_trials=1,
        rl_hidden_sizes=(16, 8),
        rf_n_estimators=5,
        rf_max_depth=5,
        threshold_grid_size=6,
    )
    return run_experiment(scenario, config)


class TestExperimentConfig:
    def test_presets(self):
        assert ExperimentConfig.fast().rl_episodes < ExperimentConfig().rl_episodes
        paper = ExperimentConfig.paper()
        assert paper.rl_episodes == 20_000
        assert paper.rl_hyperparam_trials == 60
        assert tuple(paper.rl_hidden_sizes) == (256, 256, 128, 64)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(job_scaling_factor=3.0)
        assert config.job_scaling_factor == 3.0


class TestApproachResult:
    def test_totals_aggregate_splits(self):
        result = ApproachResult(
            name="RL",
            per_split=[
                PolicyEvaluation("RL", CostBreakdown(ue_cost=1.0), ConfusionCounts(1, 0, 0, 0), 1, 5),
                PolicyEvaluation("RL", CostBreakdown(ue_cost=2.0, mitigation_cost=0.5),
                                 ConfusionCounts(0, 1, 2, 3), 1, 5),
            ],
        )
        assert result.total_costs.ue_cost == pytest.approx(3.0)
        assert result.total_confusion.true_positives == 1
        assert result.per_split_total_cost == [pytest.approx(1.0), pytest.approx(2.5)]


class TestRunExperiment:
    def test_all_approaches_present(self, tiny_result):
        from repro.evaluation.registry import enabled_specs

        enabled = [spec.name for spec in enabled_specs(ExperimentConfig())]
        for name in enabled:
            assert name in tiny_result.approaches, f"missing approach {name}"
        # Default-off registrations (Fleet-mix) must not sneak into a
        # default-config run.
        assert set(tiny_result.approaches) == set(enabled)

    def test_every_approach_covers_every_split(self, tiny_result):
        n_splits = len(tiny_result.splits)
        for approach in tiny_result.approaches.values():
            assert len(approach.per_split) == n_splits

    def test_cost_orderings(self, tiny_result):
        costs = tiny_result.total_costs()
        never = costs["Never-mitigate"]
        oracle = costs["Oracle"]
        always = costs["Always-mitigate"]
        # The Oracle is the best possible event-triggered policy (up to its
        # negligible mitigation overhead); Never pays the most UE cost;
        # Always pays the most mitigation cost.
        assert oracle.ue_cost <= min(c.ue_cost for c in costs.values()) + 1e-6
        assert (
            oracle.total
            <= min(c.total for c in costs.values()) + oracle.mitigation_cost + 1e-6
        )
        assert never.ue_cost >= max(c.ue_cost for c in costs.values()) - 1e-6
        assert never.mitigation_cost == 0.0
        assert always.n_mitigations >= max(c.n_mitigations for c in costs.values())

    def test_oracle_precision_is_near_one(self, tiny_result):
        # Oracle mitigations are almost all true positives; a mitigation only
        # fails to count when the last event falls inside the mitigation
        # overhead window right before the UE.
        confusion = tiny_result.confusions()["Oracle"]
        if confusion.n_mitigations:
            assert confusion.precision >= 0.8

    def test_ue_counts_identical_across_approaches(self, tiny_result):
        ue_counts = {c.n_ues for c in tiny_result.total_costs().values()}
        assert len(ue_counts) == 1

    def test_saving_vs_never(self, tiny_result):
        saving = tiny_result.saving_vs_never("Oracle")
        assert 0.0 <= saving <= 1.0

    def test_per_split_series_shapes(self, tiny_result):
        series = tiny_result.per_split_series("total")
        labels = tiny_result.split_labels()
        assert all(len(v) == len(labels) for v in series.values())
        with pytest.raises(ValueError):
            tiny_result.per_split_series("bogus")

    def test_final_artifacts_available(self, tiny_result):
        assert tiny_result.final_sc20_policy is not None
        assert tiny_result.final_rl_policy is not None
        assert tiny_result.final_test_features is not None
        assert tiny_result.final_test_features.shape[1] > 0

    def test_reduction_report_recorded(self, tiny_result):
        assert tiny_result.reduction_report.reduced_ues > 0

    def test_manufacturer_restriction_runs(self):
        scenario = ScenarioConfig.small(seed=3)
        config = ExperimentConfig(
            rl_episodes=5, rl_hyperparam_trials=1, rl_hidden_sizes=(8,),
            rf_n_estimators=3, threshold_grid_size=3, include_myopic=False,
        )
        result = run_experiment(scenario, config.with_overrides(manufacturer=2))
        assert result.total_costs()["Never-mitigate"].n_ues >= 0

    def test_job_scaling_scales_ue_cost(self):
        scenario = ScenarioConfig.small(seed=5)
        config = ExperimentConfig(
            rl_episodes=3, rl_hyperparam_trials=1, rl_hidden_sizes=(8,),
            rf_n_estimators=3, threshold_grid_size=3,
            include_rl=False, include_myopic=False,
        )
        base = run_experiment(scenario, config)
        scaled = run_experiment(scenario, config.with_overrides(job_scaling_factor=3.0))
        never_base = base.total_costs()["Never-mitigate"].ue_cost
        never_scaled = scaled.total_costs()["Never-mitigate"].ue_cost
        assert never_scaled == pytest.approx(3.0 * never_base, rel=0.01)
