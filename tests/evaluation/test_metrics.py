"""Tests for the classical ML metrics (Table 2 definitions)."""

import pytest
from hypothesis import given, strategies as st

from repro.evaluation.metrics import ConfusionCounts


class TestConfusionCounts:
    def test_recall_and_precision(self):
        counts = ConfusionCounts(
            true_positives=40, false_negatives=27, false_positives=96_612,
            true_negatives=162_616,
        )
        # SC20-RF row of Table 2: recall 60%, precision 0.04%.
        assert counts.recall == pytest.approx(40 / 67)
        assert counts.precision == pytest.approx(40 / 96_652)
        assert counts.n_mitigations == 96_652

    def test_never_mitigate_edge_case(self):
        counts = ConfusionCounts(false_negatives=67, true_negatives=259_228)
        assert counts.recall == 0.0
        assert counts.precision is None
        assert counts.n_mitigations == 0

    def test_oracle_has_perfect_precision(self):
        counts = ConfusionCounts(true_positives=42, false_negatives=25, true_negatives=259_228)
        assert counts.precision == 1.0
        assert counts.recall == pytest.approx(42 / 67)

    def test_no_ues_recall_zero(self):
        assert ConfusionCounts(false_positives=10, true_negatives=5).recall == 0.0

    def test_addition(self):
        a = ConfusionCounts(1, 2, 3, 4)
        b = ConfusionCounts(10, 20, 30, 40)
        total = a + b
        assert (total.true_positives, total.false_negatives) == (11, 22)
        assert (total.false_positives, total.true_negatives) == (33, 44)

    def test_sum_builtin(self):
        counts = sum([ConfusionCounts(1, 0, 0, 0), ConfusionCounts(2, 0, 0, 0)])
        assert counts.true_positives == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConfusionCounts(true_positives=-1)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_metrics_in_unit_interval(self, tp, fn, fp, tn):
        counts = ConfusionCounts(tp, fn, fp, tn)
        assert 0.0 <= counts.recall <= 1.0
        if counts.precision is not None:
            assert 0.0 <= counts.precision <= 1.0
        assert counts.n_decisions == tp + fn + fp + tn
