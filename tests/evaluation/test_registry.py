"""Tests for the pluggable approach registry."""

import pytest

from repro.core.policies import CallablePolicy, MitigationPolicy
from repro.evaluation.experiment import APPROACH_ORDER, ExperimentConfig
from repro.evaluation.pipeline import PreparedData, SplitContext, make_splits
from repro.evaluation.registry import (
    ApproachSpec,
    approach_groups,
    approach_order,
    approach_specs,
    enabled_specs,
    ensure_sc20_variants,
    get_approach,
    register_approach,
    registered_names,
    unregister_approach,
)

EXPECTED_NAMES = (
    "Never-mitigate",
    "Always-mitigate",
    "SC20-RF",
    "SC20-RF-2%",
    "SC20-RF-5%",
    "Myopic-RF",
    "RL",
    "Oracle",
)

# The full registry also carries default-off approaches (Fleet-mix sits
# between Myopic-RF and RL, enabled via ``include_fleet_mix``).
ALL_NAMES = EXPECTED_NAMES[:6] + ("Fleet-mix",) + EXPECTED_NAMES[6:]


class TestDefaultRegistrations:
    def test_all_approaches_registered_in_order(self):
        assert approach_order() == ALL_NAMES
        assert APPROACH_ORDER == ALL_NAMES

    def test_specs_carry_groups(self):
        groups = {spec.name: spec.group for spec in approach_specs()}
        assert groups["Never-mitigate"] == "static"
        assert groups["Always-mitigate"] == "static"
        assert groups["SC20-RF"] == groups["SC20-RF-2%"] == groups["Myopic-RF"] == "rf"
        assert groups["RL"] == "rl"
        assert groups["Oracle"] == "oracle"

    def test_get_approach(self):
        assert get_approach("RL").name == "RL"
        with pytest.raises(KeyError):
            get_approach("nope")

    def test_enabled_specs_follow_config_toggles(self):
        config = ExperimentConfig()
        assert tuple(s.name for s in enabled_specs(config)) == EXPECTED_NAMES

        no_rl = config.with_overrides(include_rl=False)
        assert "RL" not in {s.name for s in enabled_specs(no_rl)}

        no_rf = config.with_overrides(include_rf=False)
        names = {s.name for s in enabled_specs(no_rf)}
        assert not names & {"SC20-RF", "SC20-RF-2%", "SC20-RF-5%", "Myopic-RF"}

        no_myopic = config.with_overrides(include_myopic=False)
        names = {s.name for s in enabled_specs(no_myopic)}
        assert "Myopic-RF" not in names and "SC20-RF" in names

        offsets = config.with_overrides(sc20_threshold_offsets=(0.02,))
        names = {s.name for s in enabled_specs(offsets)}
        assert "SC20-RF-2%" in names and "SC20-RF-5%" not in names

    def test_approach_groups_cover_enabled_specs(self):
        config = ExperimentConfig()
        groups = approach_groups(config)
        assert list(groups) == ["static", "rf", "rl", "oracle"]
        flattened = [spec.name for specs in groups.values() for spec in specs]
        assert sorted(flattened) == sorted(EXPECTED_NAMES)


class TestRegistration:
    def test_register_and_unregister_custom_approach(self):
        spec = ApproachSpec(
            name="Test-custom",
            build=lambda ctx, config, factory: CallablePolicy(
                lambda context: False, name="Test-custom"
            ),
            order=65,  # between RL and Oracle
        )
        register_approach(spec)
        try:
            assert "Test-custom" in registered_names()
            order = approach_order()
            assert order.index("RL") < order.index("Test-custom") < order.index("Oracle")
        finally:
            unregister_approach("Test-custom")
        assert "Test-custom" not in registered_names()

    def test_duplicate_registration_raises_unless_replaced(self):
        spec = get_approach("Oracle")
        with pytest.raises(ValueError):
            register_approach(spec)
        register_approach(spec, replace=True)  # idempotent overwrite
        assert get_approach("Oracle") is spec

    def test_colliding_offset_names_raise_instead_of_silently_dropping(self):
        # 0.049 percent-rounds to "SC20-RF-5%", already taken by 0.05.
        config = ExperimentConfig(sc20_threshold_offsets=(0.049,))
        with pytest.raises(ValueError, match="SC20-RF-5%"):
            ensure_sc20_variants(config)

    def test_disabled_default_variants_are_not_collisions(self):
        # Regression: include_rf=False disables the default variants, which
        # must read as "this offset's variant already exists", not as a name
        # collision (ensure_sc20_variants used to consult spec.enabled, which
        # folds in the include_rf toggle).
        config = ExperimentConfig(include_rf=False)
        ensure_sc20_variants(config)  # must not raise
        names = {s.name for s in enabled_specs(config)}
        assert not names & {"SC20-RF", "SC20-RF-2%", "SC20-RF-5%", "Myopic-RF"}

    def test_offset_colliding_with_non_variant_approach_raises(self):
        # A name squatted by a custom (non-variant) approach is a genuine
        # collision even though no variant offset is recorded for it.
        from repro.baselines.sc20 import SC20RandomForestPolicy

        name = SC20RandomForestPolicy.variant_name(0.07)
        register_approach(ApproachSpec(
            name=name,
            build=lambda ctx, config, factory: CallablePolicy(
                lambda context: False, name=name
            ),
        ))
        try:
            config = ExperimentConfig(sc20_threshold_offsets=(0.07,))
            with pytest.raises(ValueError, match="SC20-RF-7%"):
                ensure_sc20_variants(config)
        finally:
            unregister_approach(name)

    def test_custom_threshold_offsets_auto_register_variants(self):
        # A non-default offset sweep must still produce its SC20-RF-N% bar
        # (the old monolith built one per configured offset).
        config = ExperimentConfig(sc20_threshold_offsets=(0.02, 0.1))
        ensure_sc20_variants(config)
        try:
            names = [s.name for s in enabled_specs(config)]
            assert "SC20-RF-10%" in names
            assert "SC20-RF-5%" not in names  # not configured -> disabled
            order = approach_order()
            assert (
                order.index("SC20-RF")
                < order.index("SC20-RF-10%")
                < order.index("Myopic-RF")
            )
        finally:
            unregister_approach("SC20-RF-10%")


@pytest.fixture(scope="module")
def build_config():
    """Cheapest config that still exercises every builder."""
    return ExperimentConfig(
        rl_episodes=2,
        rl_hyperparam_trials=1,
        rl_hidden_sizes=(8,),
        rf_n_estimators=3,
        rf_max_depth=4,
        threshold_grid_size=3,
        charge_training_time=False,
    )


class TestBuilderRoundTrip:
    def test_every_registered_approach_builds_a_working_policy(
        self, scenario, feature_tracks, job_sampler, reduction_report, build_config
    ):
        prepared = PreparedData(
            scenario=scenario,
            tracks=feature_tracks,
            sampler=job_sampler,
            reduction_report=reduction_report,
        )
        split = make_splits(scenario)[-1]  # most history: every model trains
        ctx = SplitContext(prepared, split, build_config)
        for spec in enabled_specs(build_config):
            policy = spec.build(ctx, build_config, ctx.factory)
            assert isinstance(policy, MitigationPolicy), spec.name
            assert policy.name == spec.name
            evaluation = ctx.evaluate(policy)
            assert evaluation.policy_name == spec.name
            assert evaluation.costs.total >= 0.0
