"""Tests for the dependency-aware task executor."""

import time

import pytest

from repro.evaluation.executor import (
    ExecutorStats,
    Task,
    TaskGraphError,
    execute_tasks,
)


# Module-level so the process backend can pickle them.
def _const(deps, value):
    return value


def _sum_deps(deps, bonus):
    return sum(deps.values()) + bonus


def _fail(deps):
    raise RuntimeError("task exploded")


def _fail_oserror(deps):
    raise OSError("task-level I/O failure")


def _use_shared(deps, shared, scale):
    return shared["base"] * scale


def _graph():
    return [
        Task(key="a", fn=_const, args=(1,)),
        Task(key="b", fn=_const, args=(10,)),
        Task(key="c", fn=_sum_deps, args=(100,), deps=("a", "b")),
        Task(key="d", fn=_sum_deps, args=(1000,), deps=("c",)),
    ]


class TestSerial:
    def test_results_and_dep_propagation(self):
        results = execute_tasks(_graph(), n_workers=1)
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}

    def test_empty_graph(self):
        assert execute_tasks([], n_workers=4) == {}

    def test_serial_kind_forces_in_process(self):
        results = execute_tasks(_graph(), n_workers=8, kind="serial")
        assert results["d"] == 1111

    def test_declaration_order_does_not_matter(self):
        results = execute_tasks(list(reversed(_graph())), n_workers=1)
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}


class TestValidation:
    def test_duplicate_keys_raise(self):
        tasks = [Task(key="a", fn=_const, args=(1,))] * 2
        with pytest.raises(TaskGraphError, match="duplicate"):
            execute_tasks(tasks)

    def test_unknown_dep_raises(self):
        tasks = [Task(key="a", fn=_const, args=(1,), deps=("ghost",))]
        with pytest.raises(TaskGraphError, match="unknown"):
            execute_tasks(tasks)

    def test_cycle_raises(self):
        tasks = [
            Task(key="a", fn=_const, args=(1,), deps=("b",)),
            Task(key="b", fn=_const, args=(1,), deps=("a",)),
        ]
        with pytest.raises(TaskGraphError, match="cycle"):
            execute_tasks(tasks)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            execute_tasks(_graph(), n_workers=2, kind="fancy")


class TestParallelBackends:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_matches_serial(self, kind):
        serial = execute_tasks(_graph(), n_workers=1)
        parallel = execute_tasks(_graph(), n_workers=3, kind=kind)
        assert parallel == serial

    def test_wide_fanout(self):
        tasks = [Task(key=f"t{i}", fn=_const, args=(i,)) for i in range(24)]
        tasks.append(
            Task(key="sum", fn=_sum_deps, args=(0,),
                 deps=tuple(f"t{i}" for i in range(24)))
        )
        results = execute_tasks(tasks, n_workers=4, kind="thread")
        assert results["sum"] == sum(range(24))

    def test_task_exception_propagates(self):
        tasks = [Task(key="boom", fn=_fail)]
        with pytest.raises(RuntimeError, match="task exploded"):
            execute_tasks(tasks, n_workers=2, kind="thread")

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_task_oserror_propagates_not_swallowed(self, kind):
        # An OSError raised *inside* a task is a task failure, not a
        # platform-cannot-spawn-processes signal: it must surface instead
        # of silently re-running the whole graph serially.
        tasks = [Task(key="boom", fn=_fail_oserror)]
        with pytest.raises(OSError, match="task-level I/O failure"):
            execute_tasks(tasks, n_workers=2, kind=kind)


class TestSpawnFallback:
    def test_spawn_refusal_at_submit_falls_back_to_serial(self, monkeypatch):
        # ProcessPoolExecutor spawns workers lazily at submit() time, which
        # is where a restricted sandbox refuses: the executor must degrade
        # to serial execution, not crash.
        import repro.evaluation.executor as executor_mod

        class RefusingPool:
            def __init__(self, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise OSError("Operation not permitted")

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", RefusingPool)
        # The fallback warns so masked worker crashes stay visible.
        with pytest.warns(RuntimeWarning, match="serially"):
            results = execute_tasks(_graph(), n_workers=2, kind="process")
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}

    def test_pool_constructor_failure_falls_back_to_serial(self, monkeypatch):
        import repro.evaluation.executor as executor_mod

        def _refuse(**kwargs):
            raise PermissionError("no processes for you")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _refuse)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = execute_tasks(_graph(), n_workers=2, kind="process")
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}


def _record_key(deps, shared, key):
    shared["order"].append(key)
    return key


def _sleep_for(deps, seconds):
    time.sleep(seconds)
    return seconds


class TestPriority:
    def test_ready_tasks_run_highest_priority_first(self):
        shared = {"order": []}
        tasks = [
            Task(key="low", fn=_record_key, args=("low",), priority=0),
            Task(key="high", fn=_record_key, args=("high",), priority=10),
            Task(key="mid", fn=_record_key, args=("mid",), priority=5),
        ]
        execute_tasks(tasks, n_workers=1, shared=shared)
        assert shared["order"] == ["high", "mid", "low"]

    def test_priority_never_overrides_a_dependency(self):
        shared = {"order": []}
        tasks = [
            Task(key="urgent-but-blocked", fn=_record_key,
                 args=("urgent-but-blocked",), deps=("mundane",), priority=100),
            Task(key="mundane", fn=_record_key, args=("mundane",), priority=0),
        ]
        execute_tasks(tasks, n_workers=1, shared=shared)
        assert shared["order"] == ["mundane", "urgent-but-blocked"]

    def test_equal_priorities_keep_declaration_order(self):
        shared = {"order": []}
        tasks = [
            Task(key=f"t{i}", fn=_record_key, args=(f"t{i}",)) for i in range(4)
        ]
        execute_tasks(tasks, n_workers=1, shared=shared)
        assert shared["order"] == ["t0", "t1", "t2", "t3"]

    def test_late_ready_chain_task_preempts_queued_fanout(self):
        # Regression: submissions are capped at the worker count, so a
        # high-priority task becoming ready mid-run (a warm-start reduce)
        # is selected at the next free slot instead of queueing behind
        # fan-out tasks that were all handed to the pool's FIFO up front.
        from concurrent.futures import ThreadPoolExecutor

        from repro.evaluation.executor import _run_pooled

        shared = {"order": []}
        tasks = [
            Task(key="seed", fn=_record_key, args=("seed",)),
            Task(key="fan0", fn=_record_key, args=("fan0",)),
            Task(key="fan1", fn=_record_key, args=("fan1",)),
            Task(key="chain", fn=_record_key, args=("chain",),
                 deps=("seed",), priority=10),
        ]
        with ThreadPoolExecutor(max_workers=1) as pool:
            _run_pooled(tasks, pool, shared=shared, max_in_flight=1)
        assert shared["order"] == ["seed", "chain", "fan0", "fan1"]


class TestExecutorStats:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_every_task_is_timed(self, kind):
        stats = ExecutorStats()
        results = execute_tasks(_graph(), n_workers=2, kind=kind, stats=stats)
        assert results["d"] == 1111  # timing must not disturb results
        assert set(stats.task_seconds) == {"a", "b", "c", "d"}
        assert all(seconds >= 0.0 for seconds in stats.task_seconds.values())
        assert stats.wallclock_seconds > 0.0
        assert stats.critical_path_seconds <= stats.total_task_seconds + 1e-9

    def test_critical_path_follows_the_heavy_chain(self):
        # chain: a(0.05) -> c(0.05) -> d(0.01); b(0.01) is off-chain.
        tasks = [
            Task(key="a", fn=_sleep_for, args=(0.05,)),
            Task(key="b", fn=_sleep_for, args=(0.01,)),
            Task(key="c", fn=_sleep_for, args=(0.05,), deps=("a", "b")),
            Task(key="d", fn=_sleep_for, args=(0.01,), deps=("c",)),
        ]
        stats = ExecutorStats()
        execute_tasks(tasks, n_workers=1, stats=stats)
        assert stats.critical_path == ("a", "c", "d")
        expected = sum(stats.task_seconds[key] for key in ("a", "c", "d"))
        assert stats.critical_path_seconds == pytest.approx(expected)

    def test_empty_graph_yields_empty_stats(self):
        stats = ExecutorStats()
        assert execute_tasks([], n_workers=2, stats=stats) == {}
        assert stats.task_seconds == {}
        assert stats.critical_path == ()
        assert stats.critical_path_seconds == 0.0

    def test_stats_survive_the_serial_fallback(self, monkeypatch):
        import repro.evaluation.executor as executor_mod

        def _refuse(**kwargs):
            raise PermissionError("no processes for you")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _refuse)
        stats = ExecutorStats()
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = execute_tasks(
                _graph(), n_workers=2, kind="process", stats=stats
            )
        assert results["d"] == 1111
        assert set(stats.task_seconds) == {"a", "b", "c", "d"}


class TestSharedPayload:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_shared_reaches_every_task(self, kind):
        tasks = [
            Task(key=f"t{i}", fn=_use_shared, args=(i,)) for i in range(1, 5)
        ]
        results = execute_tasks(
            tasks, n_workers=2, kind=kind, shared={"base": 7}
        )
        assert results == {"t1": 7, "t2": 14, "t3": 21, "t4": 28}

    def test_without_shared_signature_is_unchanged(self):
        results = execute_tasks(_graph(), n_workers=2, kind="process")
        assert results["d"] == 1111
