"""Tests for the dependency-aware task executor."""

import pytest

from repro.evaluation.executor import Task, TaskGraphError, execute_tasks


# Module-level so the process backend can pickle them.
def _const(deps, value):
    return value


def _sum_deps(deps, bonus):
    return sum(deps.values()) + bonus


def _fail(deps):
    raise RuntimeError("task exploded")


def _fail_oserror(deps):
    raise OSError("task-level I/O failure")


def _use_shared(deps, shared, scale):
    return shared["base"] * scale


def _graph():
    return [
        Task(key="a", fn=_const, args=(1,)),
        Task(key="b", fn=_const, args=(10,)),
        Task(key="c", fn=_sum_deps, args=(100,), deps=("a", "b")),
        Task(key="d", fn=_sum_deps, args=(1000,), deps=("c",)),
    ]


class TestSerial:
    def test_results_and_dep_propagation(self):
        results = execute_tasks(_graph(), n_workers=1)
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}

    def test_empty_graph(self):
        assert execute_tasks([], n_workers=4) == {}

    def test_serial_kind_forces_in_process(self):
        results = execute_tasks(_graph(), n_workers=8, kind="serial")
        assert results["d"] == 1111

    def test_declaration_order_does_not_matter(self):
        results = execute_tasks(list(reversed(_graph())), n_workers=1)
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}


class TestValidation:
    def test_duplicate_keys_raise(self):
        tasks = [Task(key="a", fn=_const, args=(1,))] * 2
        with pytest.raises(TaskGraphError, match="duplicate"):
            execute_tasks(tasks)

    def test_unknown_dep_raises(self):
        tasks = [Task(key="a", fn=_const, args=(1,), deps=("ghost",))]
        with pytest.raises(TaskGraphError, match="unknown"):
            execute_tasks(tasks)

    def test_cycle_raises(self):
        tasks = [
            Task(key="a", fn=_const, args=(1,), deps=("b",)),
            Task(key="b", fn=_const, args=(1,), deps=("a",)),
        ]
        with pytest.raises(TaskGraphError, match="cycle"):
            execute_tasks(tasks)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            execute_tasks(_graph(), n_workers=2, kind="fancy")


class TestParallelBackends:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_matches_serial(self, kind):
        serial = execute_tasks(_graph(), n_workers=1)
        parallel = execute_tasks(_graph(), n_workers=3, kind=kind)
        assert parallel == serial

    def test_wide_fanout(self):
        tasks = [Task(key=f"t{i}", fn=_const, args=(i,)) for i in range(24)]
        tasks.append(
            Task(key="sum", fn=_sum_deps, args=(0,),
                 deps=tuple(f"t{i}" for i in range(24)))
        )
        results = execute_tasks(tasks, n_workers=4, kind="thread")
        assert results["sum"] == sum(range(24))

    def test_task_exception_propagates(self):
        tasks = [Task(key="boom", fn=_fail)]
        with pytest.raises(RuntimeError, match="task exploded"):
            execute_tasks(tasks, n_workers=2, kind="thread")

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_task_oserror_propagates_not_swallowed(self, kind):
        # An OSError raised *inside* a task is a task failure, not a
        # platform-cannot-spawn-processes signal: it must surface instead
        # of silently re-running the whole graph serially.
        tasks = [Task(key="boom", fn=_fail_oserror)]
        with pytest.raises(OSError, match="task-level I/O failure"):
            execute_tasks(tasks, n_workers=2, kind=kind)


class TestSpawnFallback:
    def test_spawn_refusal_at_submit_falls_back_to_serial(self, monkeypatch):
        # ProcessPoolExecutor spawns workers lazily at submit() time, which
        # is where a restricted sandbox refuses: the executor must degrade
        # to serial execution, not crash.
        import repro.evaluation.executor as executor_mod

        class RefusingPool:
            def __init__(self, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise OSError("Operation not permitted")

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", RefusingPool)
        # The fallback warns so masked worker crashes stay visible.
        with pytest.warns(RuntimeWarning, match="serially"):
            results = execute_tasks(_graph(), n_workers=2, kind="process")
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}

    def test_pool_constructor_failure_falls_back_to_serial(self, monkeypatch):
        import repro.evaluation.executor as executor_mod

        def _refuse(**kwargs):
            raise PermissionError("no processes for you")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", _refuse)
        with pytest.warns(RuntimeWarning, match="process pool unavailable"):
            results = execute_tasks(_graph(), n_workers=2, kind="process")
        assert results == {"a": 1, "b": 10, "c": 111, "d": 1111}


class TestSharedPayload:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_shared_reaches_every_task(self, kind):
        tasks = [
            Task(key=f"t{i}", fn=_use_shared, args=(i,)) for i in range(1, 5)
        ]
        results = execute_tasks(
            tasks, n_workers=2, kind=kind, shared={"base": 7}
        )
        assert results == {"t1": 7, "t2": 14, "t3": 21, "t4": 28}

    def test_without_shared_signature_is_unchanged(self):
        results = execute_tasks(_graph(), n_workers=2, kind="process")
        assert results["d"] == 1111
