"""Tests for the time-series nested cross-validation splitter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.cross_validation import TimeSeriesNestedCV, TimeSeriesSplit
from repro.utils.timeutils import DAY


class TestTimeSeriesSplit:
    def test_history_range(self):
        split = TimeSeriesSplit(
            index=1, train_range=(0, 75), validation_range=(75, 100), test_range=(100, 200)
        )
        assert split.history_range == (0, 100)

    def test_rejects_validation_after_test(self):
        with pytest.raises(ValueError):
            TimeSeriesSplit(
                index=0, train_range=(0, 50), validation_range=(50, 120), test_range=(100, 200)
            )

    def test_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            TimeSeriesSplit(
                index=0, train_range=(50, 0), validation_range=(50, 60), test_range=(60, 70)
            )


class TestTimeSeriesNestedCV:
    def test_six_splits_cover_all_parts(self):
        cv = TimeSeriesNestedCV(n_parts=6)
        duration = 720 * DAY
        splits = cv.splits(0.0, duration)
        assert len(splits) == 6
        # Test ranges tile the whole period.
        assert splits[0].test_range[0] == pytest.approx(14 * DAY)
        for i, split in enumerate(splits):
            assert split.index == i
            assert split.test_range[1] == pytest.approx((i + 1) * duration / 6)

    def test_first_split_uses_two_week_bootstrap(self):
        cv = TimeSeriesNestedCV(n_parts=6, bootstrap_seconds=14 * DAY)
        splits = cv.splits(0.0, 720 * DAY)
        first = splits[0]
        assert first.validation_range[1] == pytest.approx(14 * DAY)
        assert first.train_range[1] == pytest.approx(0.75 * 14 * DAY)

    def test_later_splits_use_75_25(self):
        cv = TimeSeriesNestedCV(n_parts=6, train_fraction=0.75)
        splits = cv.splits(0.0, 600.0)
        for split in splits[1:]:
            history = split.test_range[0]
            assert split.train_range == (0.0, pytest.approx(0.75 * history))
            assert split.validation_range == (pytest.approx(0.75 * history), history)

    def test_test_ranges_never_overlap_history(self):
        cv = TimeSeriesNestedCV()
        for split in cv.splits(0.0, 1000.0):
            assert split.history_range[1] <= split.test_range[0] + 1e-9

    def test_bootstrap_capped_by_first_part(self):
        cv = TimeSeriesNestedCV(n_parts=4, bootstrap_seconds=1000.0)
        splits = cv.splits(0.0, 400.0)
        assert splits[0].validation_range[1] <= 100.0

    def test_part_boundaries(self):
        cv = TimeSeriesNestedCV(n_parts=4)
        assert cv.part_boundaries(0.0, 100.0) == [0.0, 25.0, 50.0, 75.0, 100.0]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TimeSeriesNestedCV(n_parts=0)
        with pytest.raises(ValueError):
            TimeSeriesNestedCV(train_fraction=1.5)
        with pytest.raises(ValueError):
            TimeSeriesNestedCV().splits(10.0, 10.0)

    @given(
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=100.0, max_value=1e8),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_splits_are_well_formed(self, n_parts, train_fraction, duration):
        cv = TimeSeriesNestedCV(n_parts=n_parts, train_fraction=train_fraction)
        splits = cv.splits(0.0, duration)
        assert len(splits) == n_parts
        for split in splits:
            assert split.train_range[0] <= split.train_range[1]
            assert split.validation_range[0] <= split.validation_range[1]
            assert split.test_range[0] < split.test_range[1]
            assert split.validation_range[1] <= split.test_range[0] + 1e-6
