"""Tests for the node-hour cost accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.evaluation.costs import CostBreakdown


class TestCostBreakdown:
    def test_total(self):
        costs = CostBreakdown(ue_cost=10.0, mitigation_cost=2.0, training_cost=0.5)
        assert costs.total == pytest.approx(12.5)
        assert costs.overhead_cost == pytest.approx(2.5)

    def test_addition(self):
        a = CostBreakdown(ue_cost=1.0, mitigation_cost=2.0, n_ues=1, n_mitigations=3)
        b = CostBreakdown(ue_cost=4.0, training_cost=1.0, n_ues=2)
        total = a + b
        assert total.ue_cost == 5.0
        assert total.mitigation_cost == 2.0
        assert total.training_cost == 1.0
        assert total.n_ues == 3
        assert total.n_mitigations == 3

    def test_sum_builtin(self):
        parts = [CostBreakdown(ue_cost=1.0), CostBreakdown(ue_cost=2.0)]
        assert sum(parts).ue_cost == pytest.approx(3.0)

    def test_saving_vs_reference(self):
        never = CostBreakdown(ue_cost=100.0)
        rl = CostBreakdown(ue_cost=40.0, mitigation_cost=6.0)
        assert rl.saving_vs(never) == pytest.approx(0.54)

    def test_saving_vs_zero_reference(self):
        assert CostBreakdown().saving_vs(CostBreakdown()) == 0.0

    def test_with_training_cost(self):
        costs = CostBreakdown(ue_cost=5.0).with_training_cost(2.0)
        assert costs.training_cost == 2.0
        assert costs.ue_cost == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostBreakdown(ue_cost=-1.0)
        with pytest.raises(ValueError):
            CostBreakdown(n_ues=-1)

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_property_total_is_sum(self, ue, mitigation, training):
        costs = CostBreakdown(ue_cost=ue, mitigation_cost=mitigation, training_cost=training)
        assert costs.total == pytest.approx(ue + mitigation + training)
