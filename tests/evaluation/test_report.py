"""Tests for the plain-text report formatting."""

import numpy as np
import pytest

from repro.evaluation.costs import CostBreakdown
from repro.evaluation.metrics import ConfusionCounts
from repro.evaluation.report import (
    format_behavior_grid,
    format_cost_table,
    format_metrics_table,
    format_series,
)
from repro.evaluation.behavior import BehaviorGrid


class TestFormatCostTable:
    def test_contains_all_approaches_and_savings(self):
        costs = {
            "Never-mitigate": CostBreakdown(ue_cost=74035.0),
            "RL": CostBreakdown(ue_cost=33000.0, mitigation_cost=800.0, training_cost=43.0),
        }
        text = format_cost_table(costs)
        assert "Never-mitigate" in text
        assert "RL" in text
        assert "74,035" in text
        assert "%" in text

    def test_reference_optional(self):
        costs = {"RL": CostBreakdown(ue_cost=10.0)}
        text = format_cost_table(costs, reference=None)
        assert "RL" in text


class TestFormatSeries:
    def test_aligned_columns(self):
        series = {"Never": [1.0, 2.0], "RL": [0.5, 0.7]}
        text = format_series(series, labels=["split-1", "split-2"], title="Figure 4")
        assert "Figure 4" in text
        assert "split-1" in text and "split-2" in text
        assert len(text.splitlines()) == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series({"RL": [1.0]}, labels=["a", "b"])


class TestFormatMetricsTable:
    def test_contains_recall_and_precision(self):
        metrics = {
            "Oracle": ConfusionCounts(42, 25, 0, 259228),
            "Never-mitigate": ConfusionCounts(0, 67, 0, 259228),
        }
        text = format_metrics_table(metrics)
        assert "Oracle" in text
        assert "100.00%" in text  # Oracle precision
        assert "n/a" in text  # Never-mitigate precision undefined


class TestFormatBehaviorGrid:
    def test_renders_grid(self):
        grid = BehaviorGrid(
            ue_cost_edges=np.logspace(0, 2, 3),
            probability_edges=np.linspace(0, 1, 3),
            mitigation_fraction=np.array([[0.0, np.nan], [0.5, 1.0]]),
            counts=np.array([[4, 0], [2, 2]]),
        )
        text = format_behavior_grid(grid)
        assert "Figure 6" in text
        assert "..." in text  # the empty cell
        assert "1.00" in text
