"""Edge cases of the lockstep renewal walk (the cross-trace replay).

The walk resolves every cost-feedback trace of the panel in rounds of one
``decide_windows`` call each; these tests pin the panel shapes that stress
its frontier bookkeeping — empty traces, single-event traces, wildly mixed
lengths, guesses that diverge every round — plus the decline contract: a
policy without window support falls back to the scalar path for *that
policy's* replay while batch-capable policies keep the lockstep path.
Every case asserts the vectorized replay is identical to the scalar
reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import MitigationPolicy
from repro.evaluation.runner import (
    EvaluationTrace,
    build_traces,
    evaluate_policy,
    renewal_walk_stats,
    reset_renewal_walk_stats,
)
from repro.utils.rng import RngFactory

MITIGATION_COST = 2 / 60.0


class _CostThresholdBatchPolicy(MitigationPolicy):
    """Cost-feedback policy with full batch/window support.

    Mitigates while the potential UE cost exceeds a threshold — under
    restartable jobs each mitigation resets the cost, so its decisions feed
    back through the renewal walk.
    """

    name = "cost-threshold-batched"
    cost_dependent = True

    def __init__(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def decide(self, context) -> bool:
        return context.ue_cost > self.threshold

    def decide_batch(self, trace, ue_costs=None, start=0, stop=None):
        if ue_costs is None:
            return None
        return np.asarray(ue_costs, dtype=float) > self.threshold


class _InverseCostPolicy(MitigationPolicy):
    """Worst-case guesser bait: mitigates while the cost is *low*.

    Baseline (high-cost) candidates say "don't mitigate", but right after
    any mitigation the reset cost drops below the threshold and the policy
    mitigates again — so the walk's candidate-seeded guesses diverge
    essentially every round, exercising the longest seed-confirm chains.
    """

    name = "inverse-cost"
    cost_dependent = True

    def __init__(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def decide(self, context) -> bool:
        return context.ue_cost <= self.threshold

    def decide_batch(self, trace, ue_costs=None, start=0, stop=None):
        if ue_costs is None:
            return None
        return np.asarray(ue_costs, dtype=float) <= self.threshold


class _NoBatchCostPolicy(MitigationPolicy):
    """Cost-feedback policy without decide_batch: scalar fallback only."""

    name = "no-batch"
    cost_dependent = True

    def __init__(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def decide(self, context) -> bool:
        return context.ue_cost > self.threshold


def _synthetic_trace(node, times, ue_flags, job_sampler, t_end):
    times = np.asarray(times, dtype=float)
    is_ue = np.asarray(ue_flags, dtype=bool)
    timeline = job_sampler.sample_timeline(
        0.0, t_end, rng=RngFactory(23).stream(f"edge-node-{node}")
    )
    return EvaluationTrace(
        node=node,
        times=times,
        features=np.zeros((times.size, 3)),
        is_ue=is_ue,
        is_last_before_ue=np.zeros(times.size, dtype=bool),
        timeline=timeline,
    )


def _mixed_panel(job_sampler):
    """Empty, single-event and wildly mixed-length traces in one panel."""
    t_end = 2_000_000.0
    rng = np.random.default_rng(1234)
    traces = [
        _synthetic_trace(0, [], [], job_sampler, t_end),  # empty
        _synthetic_trace(1, [50_000.0], [False], job_sampler, t_end),
        _synthetic_trace(2, [60_000.0], [True], job_sampler, t_end),  # lone UE
    ]
    for node, length in ((3, 2), (4, 500), (5, 7), (6, 133), (7, 31)):
        times = np.sort(rng.uniform(1_000.0, t_end - 1_000.0, size=length))
        ues = rng.random(length) < 0.08
        traces.append(_synthetic_trace(node, times, ues, job_sampler, t_end))
    return traces


def _assert_identical(traces, policy, restartable=True):
    scalar = evaluate_policy(
        traces, policy, MITIGATION_COST, restartable=restartable, vectorized=False
    )
    vector = evaluate_policy(
        traces, policy, MITIGATION_COST, restartable=restartable, vectorized=True
    )
    assert scalar.costs == vector.costs, policy.name
    assert scalar.confusion == vector.confusion, policy.name
    assert scalar.n_decision_points == vector.n_decision_points
    return vector


class TestLockstepEdgeCases:
    @pytest.mark.parametrize("restartable", [True, False])
    def test_mixed_length_panel(self, job_sampler, restartable):
        """Empty + single-event + mixed-length traces replay identically."""
        traces = _mixed_panel(job_sampler)
        for threshold in (0.05, 1.0, 25.0):
            _assert_identical(
                traces, _CostThresholdBatchPolicy(threshold), restartable
            )

    def test_panel_of_only_empty_and_single_event_traces(self, job_sampler):
        t_end = 500_000.0
        traces = [
            _synthetic_trace(0, [], [], job_sampler, t_end),
            _synthetic_trace(1, [], [], job_sampler, t_end),
            _synthetic_trace(2, [1_000.0], [False], job_sampler, t_end),
            _synthetic_trace(3, [2_000.0], [True], job_sampler, t_end),
        ]
        _assert_identical(traces, _CostThresholdBatchPolicy(0.5))

    def test_all_diverge_every_round_worst_case(self, job_sampler):
        """A policy whose decisions contradict every candidate guess.

        The inverse-cost rule flips its answer at each mitigation-induced
        cost reset, so confirm prefixes stay short and the walk is forced
        through its longest seed-diverge-reseed chains — the worst case for
        the speculative scheduling, which must still match the scalar
        reference decision for decision.
        """
        traces = _mixed_panel(job_sampler)
        reset_renewal_walk_stats()
        for threshold in (0.2, 2.0):
            _assert_identical(traces, _InverseCostPolicy(threshold))
        stats = renewal_walk_stats()
        assert stats["rounds"] > 0 and stats["windows"] >= stats["rounds"]

    def test_real_traces_against_threshold_policies(
        self, feature_tracks, job_sampler
    ):
        """The synthetic-panel policies also replay the realistic traces."""
        times = [t.times for t in feature_tracks.values() if len(t)]
        t_max = max(float(t[-1]) for t in times)
        traces = build_traces(
            feature_tracks, job_sampler, 0.4 * t_max, t_max + 1.0, seed=97
        )
        _assert_identical(traces, _InverseCostPolicy(1.0))


class TestDeclinePerPolicy:
    def test_declining_policy_falls_back_without_poisoning_others(
        self, job_sampler
    ):
        """Batch support is per policy: a decline sends only that policy's
        replay down the scalar path; the next batch-capable policy still
        takes the lockstep walk."""
        traces = _mixed_panel(job_sampler)

        reset_renewal_walk_stats()
        _assert_identical(traces, _NoBatchCostPolicy(1.0))
        assert renewal_walk_stats()["rounds"] == 0  # scalar fallback: no walk

        reset_renewal_walk_stats()
        _assert_identical(traces, _CostThresholdBatchPolicy(1.0))
        assert renewal_walk_stats()["rounds"] > 0  # lockstep walk ran

    def test_mid_walk_decline_aborts_to_scalar(self, job_sampler):
        """A policy that answers whole-trace batches but declines partial
        windows makes the walk abort mid-panel; the wholesale fallback must
        reproduce the scalar results exactly."""

        class _WholeTraceOnly(_CostThresholdBatchPolicy):
            name = "whole-trace-only"

            def decide_batch(self, trace, ue_costs=None, start=0, stop=None):
                stop = len(trace) if stop is None else stop
                if start != 0 or stop != len(trace):
                    return None
                return super().decide_batch(trace, ue_costs, start, stop)

        traces = _mixed_panel(job_sampler)
        reset_renewal_walk_stats()
        _assert_identical(traces, _WholeTraceOnly(1.0))
        stats = renewal_walk_stats()
        # The walk started (whole-trace candidates were answered) but could
        # not finish a single window round.
        assert stats["windows"] == stats["rounds"] == 0 or stats["rounds"] >= 1
