"""Tests for the per-trial RL task decomposition (``rl_trial_tasks``).

Three properties carry the feature:

* **Graph shape** — hyperparameter trials fan out with no cross-trial
  dependencies; only trial 0 rides the warm-start chain (through the
  select-best reduce task, which keeps the old ``rl-{split}`` key);
  ``key_prefix`` keeps two sweep points' trial tasks disjoint.
* **Determinism** — the decomposed graph is *result-identical* to the
  historical in-task trial loop, serially and with workers: the per-trial
  settings are pre-drawn from the same sequential keyed stream the loop
  consumed.
* **Accounting** — ``training_cost_node_hours`` is the sum of the per-trial
  training spans, independent of how the trials were scheduled (the
  regression test for the whole-loop wall-clock span bug).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ScenarioConfig
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.pipeline import (
    RLTrialResult,
    _rl_n_trials,
    _rl_trial_settings,
    build_split_tasks,
    make_splits,
    prepare_data,
)
from repro.utils.timeutils import DAY

TRIAL_CONFIG = ExperimentConfig(
    rl_episodes=4,
    rl_hyperparam_trials=2,
    rl_hyperparam_refine=1,
    rl_hidden_sizes=(8,),
    rf_n_estimators=3,
    rf_max_depth=4,
    threshold_grid_size=4,
    charge_training_time=False,
)


@pytest.fixture(scope="module")
def tiny_scenario():
    return ScenarioConfig.small(seed=13).with_duration(60 * DAY)


@pytest.fixture(scope="module")
def tiny_prepared(tiny_scenario):
    return prepare_data(tiny_scenario, TRIAL_CONFIG)


class TestGraphShape:
    def test_trials_fan_out_without_cross_trial_deps(
        self, tiny_prepared, tiny_scenario
    ):
        splits = make_splits(tiny_scenario)
        tasks = build_split_tasks(tiny_prepared, splits, TRIAL_CONFIG)
        by_key = {task.key: task for task in tasks}
        n_trials = _rl_n_trials(TRIAL_CONFIG)
        assert n_trials == 3  # 2 search + 1 refine
        for split in splits:
            for trial in range(1, n_trials):
                # Search trials depend on nothing: they are scheduled the
                # moment a worker is free, whatever the chain is doing.
                assert by_key[f"rl-trial{trial}-{split.index}"].deps == ()

    def test_reduce_carries_the_warm_start_edge(self, tiny_prepared, tiny_scenario):
        splits = make_splits(tiny_scenario)
        tasks = build_split_tasks(tiny_prepared, splits, TRIAL_CONFIG)
        by_key = {task.key: task for task in tasks}
        n_trials = _rl_n_trials(TRIAL_CONFIG)
        for split in splits:
            reduce_task = by_key[f"rl-{split.index}"]
            assert set(reduce_task.deps) == {
                f"rl-trial{trial}-{split.index}" for trial in range(n_trials)
            }
            trial0 = by_key[f"rl-trial0-{split.index}"]
            if split.index == 0:
                assert trial0.deps == ()
            else:
                # The chain: base candidate <- previous split's reduce.
                assert trial0.deps == (f"rl-{split.index - 1}",)

    def test_chain_tasks_outrank_search_trials(self, tiny_prepared, tiny_scenario):
        splits = make_splits(tiny_scenario)
        tasks = build_split_tasks(tiny_prepared, splits, TRIAL_CONFIG)
        by_key = {task.key: task for task in tasks}
        assert by_key["rl-trial0-0"].priority > by_key["rl-trial1-0"].priority
        assert by_key["rl-0"].priority > by_key["rl-trial1-0"].priority
        assert by_key["rf-0"].priority == 0

    def test_key_prefix_keeps_two_points_disjoint(
        self, tiny_prepared, tiny_scenario
    ):
        splits = make_splits(tiny_scenario)
        point_a = build_split_tasks(
            tiny_prepared, splits, TRIAL_CONFIG, key_prefix="cost=2/"
        )
        point_b = build_split_tasks(
            tiny_prepared, splits, TRIAL_CONFIG, key_prefix="cost=5/"
        )
        keys_a = {task.key for task in point_a}
        keys_b = {task.key for task in point_b}
        assert not keys_a & keys_b
        # Dependency edges stay inside their own point.
        for task in point_a:
            assert all(dep in keys_a for dep in task.deps)

    def test_fan_out_requires_the_builtin_rl_approach(
        self, tiny_prepared, tiny_scenario
    ):
        # A custom approach sharing the "rl" group must keep the lazy
        # single-task shape when the built-in RL approach is disabled: the
        # trial tasks would train an agent no builder may ever ask for.
        from repro.core.policies import CallablePolicy
        from repro.evaluation.registry import (
            ApproachSpec,
            register_approach,
            unregister_approach,
        )

        register_approach(ApproachSpec(
            name="Cheap-RL-variant",
            build=lambda ctx, cfg, rng: CallablePolicy(
                lambda context: False, name="Cheap-RL-variant"
            ),
            group="rl",
        ))
        try:
            config = TRIAL_CONFIG.with_overrides(include_rl=False)
            splits = make_splits(tiny_scenario)
            tasks = build_split_tasks(tiny_prepared, splits, config)
        finally:
            unregister_approach("Cheap-RL-variant")
        keys = {task.key for task in tasks}
        assert f"rl-{splits[0].index}" in keys
        assert not any("rl-trial" in key for key in keys)

    def test_disabling_trial_tasks_restores_single_rl_tasks(
        self, tiny_prepared, tiny_scenario
    ):
        splits = make_splits(tiny_scenario)
        tasks = build_split_tasks(
            tiny_prepared, splits, TRIAL_CONFIG.with_overrides(rl_trial_tasks=False)
        )
        keys = {task.key for task in tasks}
        assert not any("rl-trial" in key for key in keys)
        assert {f"rl-{split.index}" for split in splits} <= keys


class TestTrialTasksDeprecation:
    """``rl_trial_tasks=False`` still works but is on its way out."""

    def test_disabling_trial_tasks_warns(self, tiny_prepared, tiny_scenario):
        splits = make_splits(tiny_scenario)
        with pytest.warns(DeprecationWarning, match="rl_trial_tasks=False"):
            build_split_tasks(
                tiny_prepared,
                splits,
                TRIAL_CONFIG.with_overrides(rl_trial_tasks=False),
            )

    def test_default_fan_out_is_silent(self, tiny_prepared, tiny_scenario):
        import warnings

        splits = make_splits(tiny_scenario)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_split_tasks(tiny_prepared, splits, TRIAL_CONFIG)

    def test_no_warning_when_rl_is_disabled(self, tiny_prepared, tiny_scenario):
        # The override is meaningless without the built-in RL approach, and
        # nagging about a no-op flag would be noise.
        import warnings

        splits = make_splits(tiny_scenario)
        config = TRIAL_CONFIG.with_overrides(
            include_rl=False, rl_trial_tasks=False
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_split_tasks(tiny_prepared, splits, config)


class TestTrialSettings:
    def test_settings_are_stable_and_per_trial_distinct(self, tiny_scenario):
        first = _rl_trial_settings(tiny_scenario, TRIAL_CONFIG, split_index=2)
        second = _rl_trial_settings(tiny_scenario, TRIAL_CONFIG, split_index=2)
        assert first == second  # pure function of (scenario, config, split)
        assert len(first) == _rl_n_trials(TRIAL_CONFIG)
        # Trial 0 is the unchanged base configuration; later trials sample.
        base = TRIAL_CONFIG.rl_base_config
        assert first[0][0].learning_rate == base.learning_rate
        assert first[1][0].learning_rate != base.learning_rate
        seeds = {config.seed for config, _ in first}
        assert len(seeds) == len(first)

    def test_settings_differ_across_splits(self, tiny_scenario):
        a = _rl_trial_settings(tiny_scenario, TRIAL_CONFIG, split_index=0)
        b = _rl_trial_settings(tiny_scenario, TRIAL_CONFIG, split_index=1)
        assert a != b


class TestDeterminism:
    """The decomposition may change the schedule, never the numbers."""

    @pytest.fixture(scope="class")
    def fan_serial(self, tiny_scenario):
        return run_experiment(tiny_scenario, TRIAL_CONFIG)

    def _assert_identical(self, a, b):
        assert a.approach_names == b.approach_names
        for name in a.approach_names:
            for left, right in zip(
                a.approaches[name].per_split, b.approaches[name].per_split
            ):
                assert left.costs == right.costs, name
                assert left.confusion == right.confusion, name

    def test_fan_equals_chain_serially(self, tiny_scenario, fan_serial):
        chain = run_experiment(
            tiny_scenario, TRIAL_CONFIG.with_overrides(rl_trial_tasks=False)
        )
        self._assert_identical(chain, fan_serial)

    @pytest.mark.parametrize("rl_trial_tasks", [True, False], ids=["fan", "chain"])
    def test_two_workers_equal_serial_fan(
        self, tiny_scenario, fan_serial, rl_trial_tasks
    ):
        parallel = run_experiment(
            tiny_scenario,
            TRIAL_CONFIG.with_overrides(
                n_workers=2, rl_trial_tasks=rl_trial_tasks
            ),
        )
        self._assert_identical(parallel, fan_serial)


class _FakeClock:
    """Deterministic stand-in for ``time.perf_counter``."""

    def __init__(self):
        self.now = 0.0

    def perf_counter(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTrainingCostAccounting:
    """Regression: the RL training cost must be the *sum of per-trial
    spans*, not one wall-clock span around the whole search — the old span
    charged scoring-trace construction to the agent and, under parallel
    trials, would have depended on the schedule."""

    @pytest.fixture()
    def fake_timed_pipeline(self, monkeypatch, tiny_prepared):
        import repro.evaluation.pipeline as pipeline_mod

        clock = _FakeClock()

        def fake_train_agent(env, agent, n_episodes):
            clock.advance(3600.0)  # exactly one node-hour per trial

        def fake_build_traces(tracks, sampler, t_start, t_end, seed=None):
            clock.advance(500.0)  # trace building must never be charged
            return []

        monkeypatch.setattr(pipeline_mod, "time", clock)
        monkeypatch.setattr(pipeline_mod, "train_agent", fake_train_agent)
        monkeypatch.setattr(pipeline_mod, "build_traces", fake_build_traces)
        # Opt out of the trace cache so the fake builder actually runs.
        return dataclasses.replace(tiny_prepared, data_key=()), clock

    def test_cost_is_sum_of_trial_spans(self, fake_timed_pipeline, tiny_scenario):
        from repro.evaluation.pipeline import _train_rl_for_split

        prepared, clock = fake_timed_pipeline
        split = make_splits(tiny_scenario)[-1]
        agent, cost_hours, state = _train_rl_for_split(
            prepared, split, TRIAL_CONFIG, None
        )
        assert agent is not None and state is not None
        # 3 trials x 1 fake hour each; the 500 s trace builds are excluded.
        assert cost_hours == pytest.approx(3.0)
        # The reconstructed best agent starts with a zeroed internal clock,
        # so wrapping it cannot double-charge the gradient-update time.
        assert agent.training_cost_node_hours == 0.0

    def test_reduce_sums_spans_from_any_schedule(self):
        from repro.evaluation.pipeline import _select_best_rl_trial

        trials = [
            RLTrialResult(0, trial=t, score=float(-t), state={"hidden_0_w": None},
                          train_seconds=3600.0, trained=True)
            for t in (2, 0, 1)  # arrival order must not matter
        ]
        # Patch state with something loadable is unnecessary: selection
        # happens before reconstruction, so intercept via monkeypatching is
        # avoided by checking the selected trial through the carry state.
        import repro.evaluation.pipeline as pipeline_mod

        chosen = {}

        def fake_agent_from_state(config, state):
            chosen["state"] = state
            return object()

        original = pipeline_mod._agent_from_state
        pipeline_mod._agent_from_state = fake_agent_from_state
        try:
            agent, cost_hours, state = _select_best_rl_trial(TRIAL_CONFIG, trials)
        finally:
            pipeline_mod._agent_from_state = original
        assert cost_hours == pytest.approx(3.0)
        # Highest score wins (trial 0 scored 0.0, the others negative).
        assert state is chosen["state"]
        assert trials[1].trial == 0 and state is trials[1].state
