"""Tests for the staged pipeline and its parallel execution.

The determinism test is the load-bearing one: the parallel executor must
produce an :class:`ExperimentResult` identical to the serial run, which holds
because every (split × approach-group) task seeds its own random streams
from stable string keys.  Wall-clock training-cost accounting is the only
non-deterministic quantity, so these tests disable it
(``charge_training_time=False``).
"""

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.evaluation.cross_validation import TimeSeriesNestedCV
from repro.evaluation.experiment import ExperimentConfig, run_experiment
from repro.evaluation.pipeline import (
    PreparedData,
    build_split_tasks,
    evaluate_split,
    make_splits,
    prepare_data,
    train_split,
)
from repro.evaluation.registry import enabled_specs
from repro.utils.timeutils import DAY

TINY_CONFIG = ExperimentConfig(
    rl_episodes=4,
    rl_hyperparam_trials=1,
    rl_hidden_sizes=(8,),
    rf_n_estimators=3,
    rf_max_depth=4,
    threshold_grid_size=4,
    charge_training_time=False,
)


@pytest.fixture(scope="module")
def tiny_scenario():
    """Two simulated months: every stage runs, nothing takes long."""
    return ScenarioConfig.small(seed=13).with_duration(60 * DAY)


@pytest.fixture(scope="module")
def tiny_prepared(tiny_scenario):
    return prepare_data(tiny_scenario, TINY_CONFIG)


class TestStages:
    def test_prepare_data_outputs(self, tiny_prepared, tiny_scenario):
        assert isinstance(tiny_prepared, PreparedData)
        assert tiny_prepared.scenario is tiny_scenario
        assert len(tiny_prepared.tracks) > 0
        assert tiny_prepared.reduction_report is not None

    def test_make_splits_matches_cv_layout(self, tiny_scenario):
        splits = make_splits(tiny_scenario)
        cfg = tiny_scenario.evaluation
        expected = TimeSeriesNestedCV(
            n_parts=cfg.cv_parts,
            train_fraction=cfg.cv_train_fraction,
            bootstrap_seconds=cfg.cv_bootstrap_seconds,
        ).splits(0.0, tiny_scenario.duration_seconds)
        assert splits == expected

    def test_train_and_evaluate_split_cover_enabled_approaches(
        self, tiny_prepared, tiny_scenario
    ):
        split = make_splits(tiny_scenario)[-1]
        trained = train_split(tiny_prepared, split, TINY_CONFIG)
        expected = [spec.name for spec in enabled_specs(TINY_CONFIG)]
        assert list(trained.policies) == expected

        evaluated = evaluate_split(tiny_prepared, split, trained, TINY_CONFIG)
        assert list(evaluated.evaluations) == expected
        assert evaluated.n_test_events > 0
        for name, evaluation in evaluated.evaluations.items():
            assert evaluation.policy_name == name

    def test_rl_state_carries_between_splits(self, tiny_prepared, tiny_scenario):
        splits = make_splits(tiny_scenario)
        first = train_split(tiny_prepared, splits[0], TINY_CONFIG)
        second = train_split(
            tiny_prepared, splits[1], TINY_CONFIG, rl_state_in=first.rl_state
        )
        # Whenever the RL agent trained, its state is available to chain.
        if first.policies["RL"].name == "RL" and first.rl_state is not None:
            assert isinstance(first.rl_state, dict)
        assert second.split_index == 1

    def test_build_split_tasks_one_per_group_and_rl_chain(
        self, tiny_prepared, tiny_scenario
    ):
        splits = make_splits(tiny_scenario)
        config = TINY_CONFIG.with_overrides(rl_trial_tasks=False)
        tasks = build_split_tasks(tiny_prepared, splits, config)
        # 4 groups (static, rf, rl, oracle) x n splits.
        assert len(tasks) == 4 * len(splits)
        by_key = {task.key: task for task in tasks}
        # Warm start is on by default: RL tasks form a chain...
        assert by_key["rl-1"].deps == ("rl-0",)
        # ...while everything else is independent.
        assert by_key["rf-1"].deps == ()
        assert by_key["static-3"].deps == ()

    def test_build_split_tasks_default_fans_out_rl_trials(
        self, tiny_prepared, tiny_scenario
    ):
        # The default shape: one task per trial plus a select-best reduce
        # for the "rl" group, single tasks for every other group.  TINY_CONFIG
        # runs one trial per split, so each split gains exactly one extra task.
        splits = make_splits(tiny_scenario)
        tasks = build_split_tasks(tiny_prepared, splits, TINY_CONFIG)
        assert len(tasks) == 5 * len(splits)
        by_key = {task.key: task for task in tasks}
        # The reduce keeps the old chain key and carries the warm-start edge
        # to the next split's base candidate.
        assert by_key["rl-0"].deps == ("rl-trial0-0",)
        assert by_key["rl-trial0-1"].deps == ("rl-0",)
        assert by_key["rf-1"].deps == ()

    def test_group_tag_alone_does_not_trigger_training(
        self, tiny_prepared, tiny_scenario, monkeypatch
    ):
        # A custom approach sharing the "rl" group must not pay for the
        # DDDQN search when the RL approach itself is disabled.
        import repro.evaluation.pipeline as pipeline_mod
        from repro.core.policies import CallablePolicy
        from repro.evaluation.registry import (
            ApproachSpec,
            register_approach,
            unregister_approach,
        )

        def _exploding_rl_training(*args, **kwargs):
            raise AssertionError("RL training ran despite include_rl=False")

        monkeypatch.setattr(
            pipeline_mod, "_train_rl_for_split", _exploding_rl_training
        )
        register_approach(ApproachSpec(
            name="Cheap-RL-variant",
            build=lambda ctx, cfg, rng: CallablePolicy(
                lambda context: False, name="Cheap-RL-variant"
            ),
            group="rl",
        ))
        try:
            config = TINY_CONFIG.with_overrides(include_rl=False)
            split = make_splits(tiny_scenario)[-1]
            outcome = pipeline_mod.run_split_group(
                {}, tiny_prepared, split, "rl", config
            )
        finally:
            unregister_approach("Cheap-RL-variant")
        assert list(outcome.evaluations) == ["Cheap-RL-variant"]
        assert outcome.rl_policy is None

    def test_build_split_tasks_without_rf_family(self, tiny_prepared, tiny_scenario):
        # Regression: include_rf=False used to crash in ensure_sc20_variants,
        # which mistook the disabled default variants for name collisions.
        splits = make_splits(tiny_scenario)
        config = TINY_CONFIG.with_overrides(include_rf=False, rl_trial_tasks=False)
        tasks = build_split_tasks(tiny_prepared, splits, config)
        assert len(tasks) == 3 * len(splits)  # static, rl, oracle
        assert not any(task.key.startswith("rf-") for task in tasks)

    def test_run_experiment_without_rf_family(self, tiny_scenario):
        config = TINY_CONFIG.with_overrides(include_rf=False, include_rl=False)
        result = run_experiment(tiny_scenario, config)
        assert result.approach_names == ["Never-mitigate", "Always-mitigate", "Oracle"]

    def test_rl_chain_released_without_warm_start(self, tiny_prepared, tiny_scenario):
        splits = make_splits(tiny_scenario)
        config = TINY_CONFIG.with_overrides(
            rl_warm_start=False, rl_trial_tasks=False
        )
        tasks = build_split_tasks(tiny_prepared, splits, config)
        rl_deps = [task.deps for task in tasks if task.key.startswith("rl-")]
        # Either fully independent (all splits have training data) or fully
        # chained (some split must pass the previous agent through).
        assert all(deps == () for deps in rl_deps) or all(
            deps != () for deps in rl_deps[1:]
        )


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial_result(self, tiny_scenario):
        return run_experiment(tiny_scenario, TINY_CONFIG)

    @pytest.fixture(scope="class")
    def parallel_result(self, tiny_scenario):
        return run_experiment(
            tiny_scenario, TINY_CONFIG.with_overrides(n_workers=4)
        )

    def test_parallel_equals_serial(self, serial_result, parallel_result):
        assert serial_result.approach_names == parallel_result.approach_names
        assert serial_result.n_test_events == parallel_result.n_test_events
        assert serial_result.splits == parallel_result.splits
        for name in serial_result.approach_names:
            serial_approach = serial_result.approaches[name]
            parallel_approach = parallel_result.approaches[name]
            assert len(serial_approach.per_split) == len(parallel_approach.per_split)
            for a, b in zip(serial_approach.per_split, parallel_approach.per_split):
                assert a.costs == b.costs, name
                assert a.confusion == b.confusion, name
                assert a.n_traces == b.n_traces, name
                assert a.n_decision_points == b.n_decision_points, name

    def test_parallel_final_artifacts_match(self, serial_result, parallel_result):
        assert np.array_equal(
            serial_result.final_test_features, parallel_result.final_test_features
        )
        if serial_result.final_rl_policy is not None:
            assert parallel_result.final_rl_policy is not None
            serial_state = serial_result.final_rl_policy.agent.state_dict()
            parallel_state = parallel_result.final_rl_policy.agent.state_dict()
            assert serial_state.keys() == parallel_state.keys()
            for key in serial_state:
                assert np.array_equal(serial_state[key], parallel_state[key]), key

    def test_all_approaches_cover_all_splits(self, serial_result):
        for approach in serial_result.approaches.values():
            assert len(approach.per_split) == len(serial_result.splits)
