"""Tests for the policy evaluation runner."""

import numpy as np
import pytest

from repro.baselines.static import (
    AlwaysMitigatePolicy,
    NeverMitigatePolicy,
    OraclePolicy,
)
from repro.core.features import N_FEATURES, NodeFeatureTrack
from repro.core.policies import CallablePolicy
from repro.evaluation.runner import (
    EvaluationTrace,
    build_traces,
    evaluate_policies,
    evaluate_policy,
)
from repro.utils.timeutils import DAY, HOUR
from repro.workload.job import JobLog, JobRecord
from repro.workload.sampling import JobSequenceSampler


@pytest.fixture()
def constant_sampler():
    log = JobLog.from_records(
        [JobRecord(submit=0, start=0, end=1000 * HOUR, n_nodes=10, job_id=0)]
    )
    return JobSequenceSampler(log, seed=0)


def _tracks():
    times = np.array([1 * HOUR, 2 * HOUR, 20 * HOUR, 21 * HOUR])
    return {
        0: NodeFeatureTrack(
            node=0,
            times=times,
            features=np.ones((4, N_FEATURES)),
            is_ue=np.array([False, False, False, True]),
        ),
        1: NodeFeatureTrack(
            node=1,
            times=np.array([5 * HOUR]),
            features=np.ones((1, N_FEATURES)),
            is_ue=np.array([False]),
        ),
    }


class TestBuildTraces:
    def test_traces_cover_nodes_in_range(self, constant_sampler):
        traces = build_traces(_tracks(), constant_sampler, 0.0, 30 * HOUR, seed=1)
        assert {t.node for t in traces} == {0, 1}

    def test_is_last_before_ue_flag(self, constant_sampler):
        traces = build_traces(_tracks(), constant_sampler, 0.0, 30 * HOUR, seed=1)
        trace0 = next(t for t in traces if t.node == 0)
        assert trace0.is_last_before_ue.tolist() == [False, False, True, False]

    def test_deterministic_job_timelines(self, constant_sampler, feature_tracks, job_sampler):
        a = build_traces(feature_tracks, job_sampler, 0.0, 10 * DAY, seed=5)
        b = build_traces(feature_tracks, job_sampler, 0.0, 10 * DAY, seed=5)
        assert len(a) == len(b)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.timeline.starts, tb.timeline.starts)
            assert np.array_equal(ta.timeline.n_nodes, tb.timeline.n_nodes)

    def test_rejects_empty_range(self, constant_sampler):
        with pytest.raises(ValueError):
            build_traces(_tracks(), constant_sampler, 10.0, 10.0)

    def test_trace_validation(self, constant_sampler):
        traces = build_traces(_tracks(), constant_sampler, 0.0, 30 * HOUR, seed=1)
        trace = traces[0]
        with pytest.raises(ValueError):
            EvaluationTrace(
                node=trace.node,
                times=trace.times,
                features=trace.features[:1],
                is_ue=trace.is_ue,
                is_last_before_ue=trace.is_last_before_ue,
                timeline=trace.timeline,
            )


class TestEvaluatePolicy:
    @pytest.fixture()
    def traces(self, constant_sampler):
        return build_traces(_tracks(), constant_sampler, 0.0, 30 * HOUR, seed=2)

    def test_never_mitigate_pays_full_ue_cost(self, traces):
        result = evaluate_policy(traces, NeverMitigatePolicy(), mitigation_cost=2 / 60)
        # The UE at 21h on a 10-node job started at or before t=0 costs at
        # least 10 * 21 = 210 node-hours.
        assert result.costs.ue_cost >= 210.0 - 1e-6
        assert result.costs.mitigation_cost == 0.0
        assert result.costs.n_ues == 1
        assert result.confusion.recall == 0.0

    def test_oracle_minimises_ue_cost(self, traces):
        oracle = evaluate_policy(traces, OraclePolicy(), mitigation_cost=2 / 60)
        never = evaluate_policy(traces, NeverMitigatePolicy(), mitigation_cost=2 / 60)
        assert oracle.costs.ue_cost < never.costs.ue_cost
        assert oracle.costs.n_mitigations == 1
        # The oracle mitigates at 20h; the UE then costs only 10 nodes x 1h.
        assert oracle.costs.ue_cost == pytest.approx(10.0, rel=1e-6)
        assert oracle.confusion.recall == 1.0
        assert oracle.confusion.precision == 1.0

    def test_always_mitigate_counts(self, traces):
        result = evaluate_policy(traces, AlwaysMitigatePolicy(), mitigation_cost=2 / 60)
        assert result.costs.n_mitigations == 4  # every non-UE event
        assert result.costs.mitigation_cost == pytest.approx(4 * 2 / 60)
        assert result.confusion.true_positives == 1
        assert result.confusion.false_positives == 3
        assert result.confusion.true_negatives == 0

    def test_non_restartable_mitigation_does_not_reduce_ue_cost(self, traces):
        always = evaluate_policy(
            traces, AlwaysMitigatePolicy(), mitigation_cost=2 / 60, restartable=False
        )
        never = evaluate_policy(
            traces, NeverMitigatePolicy(), mitigation_cost=2 / 60, restartable=False
        )
        assert always.costs.ue_cost == pytest.approx(never.costs.ue_cost)

    def test_training_cost_inclusion_flag(self, traces):
        class Costly(NeverMitigatePolicy):
            @property
            def training_cost_node_hours(self):
                return 5.0

        with_cost = evaluate_policy(traces, Costly(), mitigation_cost=0.033)
        without = evaluate_policy(
            traces, Costly(), mitigation_cost=0.033, include_training_cost=False
        )
        assert with_cost.costs.training_cost == 5.0
        assert without.costs.training_cost == 0.0

    def test_ue_cost_fn_override(self, traces):
        result = evaluate_policy(
            traces,
            NeverMitigatePolicy(),
            mitigation_cost=0.033,
            ue_cost_fn=lambda trace, i, t, default: 7.0,
        )
        assert result.costs.ue_cost == pytest.approx(7.0)

    def test_mitigation_must_complete_before_ue(self, traces):
        # A policy that mitigates only on the very last event before the UE
        # with an overhead longer than the gap gets no credit (FN), although
        # the cost accounting still benefits from the reset.
        policy = CallablePolicy(lambda ctx: ctx.is_last_event_before_ue, name="late")
        result = evaluate_policy(
            traces,
            policy,
            mitigation_cost=2 / 60,
            mitigation_overhead_seconds=2 * HOUR,
        )
        assert result.confusion.true_positives == 0
        assert result.confusion.false_negatives == 1

    def test_empty_traces(self):
        result = evaluate_policy([], NeverMitigatePolicy(), mitigation_cost=0.033)
        assert result.costs.total == 0.0
        assert result.n_traces == 0

    def test_evaluate_policies_returns_all(self, traces):
        results = evaluate_policies(
            traces,
            [NeverMitigatePolicy(), AlwaysMitigatePolicy(), OraclePolicy()],
            mitigation_cost=0.033,
        )
        assert set(results) == {"Never-mitigate", "Always-mitigate", "Oracle"}

    def test_cost_ordering_invariant(self, feature_tracks, job_sampler):
        # On realistic data: Oracle <= Always on UE cost, and Never has zero
        # mitigation cost but the largest UE cost.
        traces = build_traces(feature_tracks, job_sampler, 0.0, 60 * DAY, seed=3)
        never = evaluate_policy(traces, NeverMitigatePolicy(), 2 / 60)
        always = evaluate_policy(traces, AlwaysMitigatePolicy(), 2 / 60)
        oracle = evaluate_policy(traces, OraclePolicy(), 2 / 60)
        # Always mitigates at every event (including the one the Oracle picks),
        # so its UE cost is a lower bound on the Oracle's; the Oracle in turn
        # never does worse on UE cost than doing nothing.
        assert always.costs.ue_cost <= oracle.costs.ue_cost + 1e-6
        assert oracle.costs.ue_cost <= never.costs.ue_cost + 1e-6
        assert always.costs.ue_cost <= never.costs.ue_cost + 1e-6
        assert oracle.costs.mitigation_cost <= always.costs.mitigation_cost
        assert never.costs.mitigation_cost == 0.0
        assert always.confusion.recall >= oracle.confusion.recall - 1e-9
