"""``python -m repro`` — the CLI over Study and ArtifactStore.

The heavyweight path (sweep into a store, report from it, resume with zero
recomputed points) mirrors the CI smoke step; everything else exercises the
flag parsing and error reporting without running experiments.
"""

from __future__ import annotations

import pytest

from repro import cli

#: Cheapest CLI schedule that still runs every approach.
FAST_FLAGS = [
    "--duration-days", "45",
    "--seed", "11",
    "--fast",
    "--episodes", "5",
    "--executor", "serial",
]


class TestParsing:
    def test_restartable_values(self):
        assert cli._parse_restartable("both") == [True, False]
        assert cli._parse_restartable("on,off") == [True, False]
        assert cli._parse_restartable("off") == [False]
        with pytest.raises(Exception, match="restartable"):
            cli._parse_restartable("maybe")

    def test_manufacturer_values(self):
        assert cli._parse_manufacturers("all") == [None]
        assert cli._parse_manufacturers("A,b,2") == [0, 1, 2]
        with pytest.raises(Exception, match="manufacturer"):
            cli._parse_manufacturers("Z")

    def test_run_rejects_multi_valued_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="sweep"):
            cli.main(["run", "--mitigation-cost", "2,5"] + FAST_FLAGS)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_invalid_which_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["sweep", "--which", "totl"])
        assert "invalid choice" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli.main(["report", "--store", "x", "--which", "totl"])

    @pytest.mark.parametrize("command", ["run", "sweep"])
    def test_rl_trial_tasks_flag_reaches_the_config(self, command):
        parser = cli.build_parser()
        default = parser.parse_args([command] + FAST_FLAGS)
        assert default.rl_trial_tasks is None
        # Unset -> the ExperimentConfig default (per-trial tasks on).
        assert cli._config_from_args(default).rl_trial_tasks is True

        on = parser.parse_args([command, "--rl-trial-tasks"] + FAST_FLAGS)
        assert cli._config_from_args(on).rl_trial_tasks is True

        off = parser.parse_args([command, "--no-rl-trial-tasks"] + FAST_FLAGS)
        assert cli._config_from_args(off).rl_trial_tasks is False


class TestServe:
    """The `serve` subcommand over a tiny mcelog file (fast policies only)."""

    EVENTS = (
        "# spooled by mcelog\n"
        "CE time=10.0 node=3 dimm=1 count=4 rank=0 bank=2\n"
        "BOOT time=15.5 node=7\n"
        "CE time=200.25 node=3 dimm=1 count=1\n"
        "UE time=300.0 node=3 dimm=1\n"
        "CE time=410.0 node=7 dimm=2 count=2\n"
    )

    def _spool(self, tmp_path):
        path = tmp_path / "events.log"
        path.write_text(self.EVENTS)
        return str(path)

    def test_serve_file_source_with_decision_log(self, tmp_path, capsys):
        import json

        log_path = str(tmp_path / "decisions.jsonl")
        assert (
            cli.main(
                [
                    "serve",
                    "--source", self._spool(tmp_path),
                    "--policy", "always",
                    "--decision-log", log_path,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Always-mitigate: 5 events -> 5 steps" in out
        assert "decisions/s" in out
        with open(log_path) as handle:
            entries = [json.loads(line) for line in handle]
        assert len(entries) == 5
        assert sum(entry["is_ue"] for entry in entries) == 1
        assert all(
            set(entry) == {"tick", "node", "time", "ue_cost", "mitigate", "is_ue"}
            for entry in entries
        )

    def test_serve_never_policy(self, tmp_path, capsys):
        assert (
            cli.main(
                ["serve", "--source", self._spool(tmp_path), "--policy", "never"]
            )
            == 0
        )
        assert "0 mitigations" in capsys.readouterr().out

    def test_serve_rejects_rl_without_a_preset(self, tmp_path):
        with pytest.raises(SystemExit, match="preset"):
            cli.main(["serve", "--source", self._spool(tmp_path), "--policy", "rl"])

    def test_serve_rejects_bad_train_fraction(self, tmp_path):
        with pytest.raises(SystemExit, match="train-fraction"):
            cli.main(
                [
                    "serve",
                    "--source", self._spool(tmp_path),
                    "--policy", "always",
                    "--train-fraction", "1.5",
                ]
            )

    def test_serve_rejects_unknown_preset(self):
        with pytest.raises(SystemExit, match="unknown preset"):
            cli.main(["serve", "--source", "preset:galactic", "--policy", "never"])

    def test_serve_rejects_pacing_a_file_source(self, tmp_path):
        with pytest.raises(SystemExit, match="replay-at-speed"):
            cli.main(
                [
                    "serve",
                    "--source", self._spool(tmp_path),
                    "--policy", "always",
                    "--replay-at-speed", "100",
                ]
            )

    def test_serve_trains_a_forest_on_the_file(self, tmp_path, capsys):
        """sc20 on a file source trains on the file's own contents."""
        # A handful of CE/UE pairs gives the dataset both classes.
        lines = ["# generated\n"]
        t = 0.0
        for node in range(4):
            for k in range(6):
                t += 400.0
                lines.append(f"CE time={t!r} node={node} dimm=0 count={k + 1}\n")
            t += 120.0
            lines.append(f"UE time={t!r} node={node}\n")
        path = tmp_path / "trainable.log"
        path.write_text("".join(lines))
        assert (
            cli.main(["serve", "--source", str(path), "--policy", "sc20"]) == 0
        )
        assert "SC20-RF" in capsys.readouterr().out


class TestReportErrors:
    def test_report_on_empty_store_fails_cleanly(self, tmp_path, capsys):
        assert cli.main(["report", "--store", str(tmp_path / "runs")]) == 2
        assert "no sweeps" in capsys.readouterr().err

    def test_report_unknown_key_fails_cleanly(self, tmp_path, capsys):
        assert (
            cli.main(
                ["report", "--store", str(tmp_path / "runs"), "--sweep", "f" * 16]
            )
            == 2
        )
        assert "no stored sweep" in capsys.readouterr().err


class TestSweepLifecycle:
    def test_sweep_report_resume_lifecycle(self, tmp_path, capsys):
        """sweep -> report -> identical re-run with zero recomputed points."""
        store_dir = str(tmp_path / "runs")
        sweep_args = (
            ["sweep", "--mitigation-cost", "2,10", "--store", store_dir]
            + FAST_FLAGS
        )

        assert cli.main(sweep_args) == 0
        first = capsys.readouterr().out
        assert "cost=2" in first and "cost=10" in first
        assert "points computed: 2" in first
        assert "points loaded from store: 0" in first
        # The executor's measured critical path is part of the report, so
        # the chain-vs-fan speedup is observable from the command line.
        assert "critical path" in first

        assert cli.main(["report", "--store", store_dir]) == 0
        report = capsys.readouterr().out
        assert "cost=2" in report and "Never-mitigate" in report

        assert cli.main(sweep_args) == 0
        second = capsys.readouterr().out
        assert "points computed: 0" in second
        assert "points loaded from store: 2" in second

        assert cli.main(["list", "--store", store_dir]) == 0
        listing = capsys.readouterr().out
        assert "sweeps (1)" in listing
        assert "results (2)" in listing
        assert "prepared (1)" in listing

        # gc: the sweep's product is referenced, an orphan is prunable.
        from repro.config import ScenarioConfig
        from repro.evaluation.pipeline import ExperimentConfig, prepare_data
        from repro.store import ArtifactStore
        from repro.utils.timeutils import DAY

        store = ArtifactStore(store_dir)
        orphan = ScenarioConfig.small(seed=4242).with_duration(20 * DAY)
        orphan_key = store.save_prepared(
            prepare_data(orphan, ExperimentConfig.fast()), ExperimentConfig.fast()
        )
        assert cli.main(["gc", "--store", store_dir, "--dry-run", "--grace-minutes", "0"]) == 0
        dry = capsys.readouterr().out
        assert f"would remove: prepared/{orphan_key}" in dry
        assert "freeing" in dry and "1 referenced product(s) kept" in dry
        assert orphan_key in store.list_prepared()

        assert cli.main(["gc", "--store", store_dir, "--grace-minutes", "0"]) == 0
        pruned = capsys.readouterr().out
        assert f"removed: prepared/{orphan_key}" in pruned
        assert orphan_key not in store.list_prepared()

        # The sweep still reports from the store after the gc pass.
        assert cli.main(["report", "--store", store_dir]) == 0


class TestProfileFlag:
    def test_run_with_profile_prints_one_merged_table(self, tmp_path, capsys):
        args = (
            ["run", "--mitigation-cost", "5", "--profile"]
            + FAST_FLAGS
        )
        assert cli.main(args) == 0
        out = capsys.readouterr().out
        # One merged top-N table (pstats.Stats.add across stages), naming
        # the stages it covers — not a table per stage.
        assert out.count("top functions by cumulative time") == 1
        assert "merged across stages" in out
        assert "prepare_data" in out and "execute_tasks" in out
        assert "cumtime" in out

    def test_profile_surfaces_in_result_extras(self):
        from repro.config import ScenarioConfig
        from repro.evaluation.experiment import run_experiment
        from repro.evaluation.pipeline import ExperimentConfig
        from repro.utils.timeutils import DAY

        scenario = ScenarioConfig.small(seed=11).with_duration(30 * DAY)
        config = ExperimentConfig(
            include_rf=False,
            include_rl=False,
            include_myopic=False,
            charge_training_time=False,
            executor_kind="serial",
            profile=True,
        )
        result = run_experiment(scenario, config)
        report = result.extras["profile"]
        assert set(report) == {
            "prepare_data", "execute_tasks", "aggregate", "total",
        }
        for rows in report.values():
            assert rows and {"function", "ncalls", "tottime", "cumtime"} <= set(
                rows[0]
            )
        # The merged entry folds the raw stats: a function's combined call
        # count is at least its count in any single stage's table.
        per_stage_max = {}
        for stage in ("prepare_data", "execute_tasks", "aggregate"):
            for row in report[stage]:
                per_stage_max[row["function"]] = max(
                    per_stage_max.get(row["function"], 0), row["ncalls"]
                )
        merged_calls = {row["function"]: row["ncalls"] for row in report["total"]}
        shared = set(merged_calls) & set(per_stage_max)
        assert shared
        for function in shared:
            assert merged_calls[function] >= per_stage_max[function]

    def test_profile_off_leaves_extras_empty(self):
        from repro.config import ScenarioConfig
        from repro.evaluation.experiment import run_experiment
        from repro.evaluation.pipeline import ExperimentConfig
        from repro.utils.timeutils import DAY

        scenario = ScenarioConfig.small(seed=11).with_duration(30 * DAY)
        config = ExperimentConfig(
            include_rf=False,
            include_rl=False,
            include_myopic=False,
            charge_training_time=False,
            executor_kind="serial",
        )
        result = run_experiment(scenario, config)
        assert "profile" not in result.extras
